"""Tests for the experiment-orchestration layer (config, runner, CLI) and the
lossless checkpoint/resume machinery it is built on."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.autograd.module import Parameter
from repro.autograd.optim import Adam, SGD
from repro.core import (
    BaselineConfig,
    BaselineSearcher,
    ClassifierTrainingConfig,
    DanceConfig,
    DanceSearcher,
    RLCoExplorationConfig,
    RLCoExplorationSearcher,
    SearchResult,
)
from repro.data import make_cifar_like, train_val_split
from repro.evaluator import Evaluator, LayerCostTable, generate_evaluator_dataset, train_evaluator
from repro.experiments import ExperimentConfig, Runner, Searcher, build_components
from repro.hwmodel import AcceleratorConfig, HardwareMetrics, tiny_search_space
from repro.nas import build_cifar_search_space
from repro.utils.serialization import (
    decode_state,
    encode_state,
    load_checkpoint,
    restore_rng,
    rng_state,
    save_checkpoint,
)


# ----------------------------------------------------------------------
# Lossless state round-trips
# ----------------------------------------------------------------------
class TestStateSerialization:
    def test_ndarray_roundtrip_preserves_dtype_shape_and_bits(self, tmp_path):
        arrays = {
            "f64": np.random.default_rng(0).normal(size=(3, 4)),
            "i64": np.arange(7, dtype=np.int64),
            "scalar_shape": np.array(3.25),
            "empty": np.zeros((0, 2)),
        }
        loaded = load_checkpoint(save_checkpoint(arrays, tmp_path / "arrays.json"))
        for key, original in arrays.items():
            assert loaded[key].dtype == original.dtype
            assert loaded[key].shape == original.shape
            assert np.array_equal(loaded[key], original)

    def test_rng_roundtrip_continues_identically(self, tmp_path):
        rng = np.random.default_rng(123)
        rng.normal(size=100)  # advance the stream
        state = load_checkpoint(save_checkpoint({"rng": rng}, tmp_path / "rng.json"))
        resumed = state["rng"]
        assert np.array_equal(rng.normal(size=50), resumed.normal(size=50))
        assert rng.integers(0, 1000) == resumed.integers(0, 1000)

    def test_restore_rng_in_place(self):
        source = np.random.default_rng(5)
        source.normal(size=13)
        snapshot = rng_state(source)
        target = np.random.default_rng(99)
        restore_rng(snapshot, into=target)
        assert np.array_equal(source.normal(size=8), target.normal(size=8))

    def test_nested_structures_roundtrip(self):
        state = {"list": [1, 2.5, None, "x"], "nested": {"arr": np.ones(3), "flag": True}}
        decoded = decode_state(json.loads(json.dumps(encode_state(state))))
        assert decoded["list"] == state["list"]
        assert np.array_equal(decoded["nested"]["arr"], state["nested"]["arr"])

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError):
            encode_state({1: "x"})

    def test_unencodable_values_rejected_at_encode_time(self):
        with pytest.raises(TypeError, match="HardwareMetrics"):
            encode_state({"metrics": HardwareMetrics(1.0, 1.0, 1.0)})

    def test_module_state_dict_roundtrip_through_json(self, small_nas_space):
        from repro.nas.supernet import SuperNet

        net = SuperNet(small_nas_space, rng=0)
        state = decode_state(json.loads(json.dumps(encode_state(net.state_dict()))))
        clone = SuperNet(small_nas_space, rng=1)
        clone.load_state_dict(state)
        for (name_a, param_a), (name_b, param_b) in zip(
            net.named_parameters(), clone.named_parameters()
        ):
            assert name_a == name_b
            assert np.array_equal(param_a.data, param_b.data)


class TestOptimizerState:
    def test_sgd_velocity_roundtrip(self):
        p = Parameter(np.ones(4))
        optimizer = SGD([p], lr=0.1, momentum=0.9, nesterov=True)
        p.grad = np.full(4, 0.5)
        optimizer.step()
        state = decode_state(json.loads(json.dumps(encode_state(optimizer.state_dict()))))

        q = Parameter(p.data.copy())
        fresh = SGD([q], lr=0.7, momentum=0.9, nesterov=True)
        fresh.load_state_dict(state)
        assert fresh.lr == optimizer.lr
        p.grad = np.full(4, 0.25)
        q.grad = np.full(4, 0.25)
        optimizer.step()
        fresh.step()
        assert np.array_equal(p.data, q.data)

    def test_adam_moments_roundtrip(self):
        p = Parameter(np.linspace(0, 1, 5))
        optimizer = Adam([p], lr=0.01)
        for _ in range(3):
            p.grad = np.ones(5)
            optimizer.step()
        state = decode_state(json.loads(json.dumps(encode_state(optimizer.state_dict()))))

        q = Parameter(p.data.copy())
        fresh = Adam([q], lr=0.5)
        fresh.load_state_dict(state)
        p.grad = np.full(5, 0.1)
        q.grad = np.full(5, 0.1)
        optimizer.step()
        fresh.step()
        assert np.array_equal(p.data, q.data)


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------
class TestExperimentConfig:
    def test_roundtrip_through_file(self, tmp_path):
        config = ExperimentConfig(method="rl", seed=3, task="imagenet", lambda_2=2.5)
        config.save(tmp_path / "config.json")
        assert ExperimentConfig.load(tmp_path / "config.json") == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown config keys"):
            ExperimentConfig.from_dict({"metod": "dance"})

    def test_unknown_keys_get_did_you_mean_hint(self):
        with pytest.raises(ValueError, match="did you mean 'method'"):
            ExperimentConfig.from_dict({"metod": "dance"})
        with pytest.raises(ValueError, match="did you mean 'search_epochs'"):
            ExperimentConfig().apply_override("serch_epochs", "4")

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(method="evolution")
        with pytest.raises(ValueError):
            ExperimentConfig(task="mnist")
        with pytest.raises(ValueError):
            ExperimentConfig(cost="quadratic")

    def test_backend_validated_with_hint(self):
        assert ExperimentConfig(backend="systolic").backend == "systolic"
        with pytest.raises(ValueError, match="did you mean 'systolic'"):
            ExperimentConfig(backend="systolik")
        with pytest.raises(ValueError, match="did you mean 'simd'"):
            ExperimentConfig().apply_override("backend", "simdd")

    def test_backend_names_run_directories(self):
        assert ExperimentConfig().name == "dance-cifar-seed0"  # historical form
        assert ExperimentConfig(backend="simd").name == "dance-cifar-seed0-simd"

    def test_apply_override_coerces_types(self):
        config = ExperimentConfig()
        assert config.apply_override("search_epochs", "7").search_epochs == 7
        assert config.apply_override("lambda_2", "0.25").lambda_2 == 0.25
        assert config.apply_override("retrain_final", "false").retrain_final is False
        assert config.apply_override("retrain_final", "on").retrain_final is True
        assert config.apply_override("backend", "systolic").backend == "systolic"
        with pytest.raises(ValueError, match="unknown config key"):
            config.apply_override("no_such_field", "1")

    def test_apply_override_rejects_bad_booleans(self):
        with pytest.raises(ValueError, match="expects a boolean"):
            ExperimentConfig().apply_override("retrain_final", "enabled")

    def test_task_defaults(self):
        assert ExperimentConfig(task="cifar").effective_num_classes == 10
        assert ExperimentConfig(task="imagenet").effective_num_classes == 20
        assert ExperimentConfig(num_classes=7).effective_num_classes == 7


# ----------------------------------------------------------------------
# Searcher protocol conformance
# ----------------------------------------------------------------------
class TestSearcherProtocol:
    @pytest.fixture(scope="class")
    def spaces(self):
        nas_space = build_cifar_search_space(
            num_searchable=3, trainable_resolution=8, trainable_base_channels=4
        )
        hw_space = tiny_search_space()
        return nas_space, hw_space, LayerCostTable(nas_space, hw_space)

    def test_all_search_loops_implement_protocol(self, spaces):
        nas_space, hw_space, cost_table = spaces
        evaluator = Evaluator(nas_space, hw_space, rng=0)
        searchers = [
            DanceSearcher(nas_space, evaluator, cost_table, rng=0),
            BaselineSearcher(nas_space, cost_table, rng=0),
            RLCoExplorationSearcher(nas_space, hw_space, cost_table, rng=0),
        ]
        for searcher in searchers:
            assert isinstance(searcher, Searcher)
            assert searcher.steps_completed == 0

    def test_num_steps_tracks_config(self, spaces):
        nas_space, hw_space, cost_table = spaces
        assert (
            BaselineSearcher(
                nas_space, cost_table, config=BaselineConfig(search_epochs=5), rng=0
            ).num_steps
            == 5
        )
        assert (
            RLCoExplorationSearcher(
                nas_space,
                hw_space,
                cost_table,
                config=RLCoExplorationConfig(num_candidates=7),
                rng=0,
            ).num_steps
            == 7
        )


# ----------------------------------------------------------------------
# SearchResult round-trip
# ----------------------------------------------------------------------
class TestSearchResultSerialization:
    def test_to_from_dict_roundtrip(self):
        result = SearchResult(
            method="DANCE (test)",
            op_indices=np.array([1, 0, 3], dtype=np.int64),
            accuracy=0.8125,
            hardware=AcceleratorConfig(16, 16, 32, "RS"),
            metrics=HardwareMetrics(latency_ms=1.25, energy_mj=0.5, area_mm2=3.0),
            search_seconds=12.5,
            candidates_trained=1,
            history=[{"epoch": 0.0, "train_ce": 2.25}],
        )
        restored = SearchResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored.method == result.method
        assert np.array_equal(restored.op_indices, result.op_indices)
        assert restored.accuracy == result.accuracy
        assert restored.hardware == result.hardware
        assert restored.metrics == result.metrics
        assert restored.history == result.history

    def test_nan_accuracy_survives(self):
        result = SearchResult(
            method="x",
            op_indices=np.array([0], dtype=np.int64),
            accuracy=float("nan"),
            hardware=AcceleratorConfig(8, 8, 16, "WS"),
            metrics=HardwareMetrics(1.0, 1.0, 1.0),
            search_seconds=0.0,
        )
        restored = SearchResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert math.isnan(restored.accuracy)

    def test_non_default_backend_hardware_roundtrip(self):
        from repro.hwmodel.backends.systolic import SystolicConfig

        result = SearchResult(
            method="x",
            op_indices=np.array([0], dtype=np.int64),
            accuracy=0.5,
            hardware=SystolicConfig(rows=64, cols=32, acc_depth=512),
            metrics=HardwareMetrics(1.0, 1.0, 1.0),
            search_seconds=0.0,
        )
        payload = result.to_dict()
        assert payload["backend"] == "systolic"
        restored = SearchResult.from_dict(json.loads(json.dumps(payload)))
        assert restored.hardware == result.hardware
        assert restored.backend_name == "systolic"

    def test_text_tables_tag_non_default_backends(self):
        from repro.core.results import format_results_table
        from repro.hwmodel.backends.simd import SimdConfig

        rows = [
            SearchResult(
                method="DANCE (w/ FF)",
                op_indices=np.array([0], dtype=np.int64),
                accuracy=0.5,
                hardware=hardware,
                metrics=HardwareMetrics(1.0, 1.0, 1.0),
                search_seconds=0.0,
            )
            for hardware in (
                AcceleratorConfig(8, 8, 16, "WS"),
                SimdConfig(lanes=8, vector_rf=16, issue=1),
            )
        ]
        table = format_results_table(rows)
        assert "DANCE (w/ FF) [simd]" in table
        assert "DANCE (w/ FF) [eyeriss]" not in table  # default stays untagged

    def test_pre_backend_results_default_to_eyeriss(self):
        """Result files written before the backend era load unchanged."""
        payload = {
            "method": "legacy",
            "op_indices": [0],
            "accuracy": 0.25,
            "hardware": {"pe_x": 8, "pe_y": 8, "rf_size": 16, "dataflow": "WS"},
            "metrics": {"latency_ms": 1.0, "energy_mj": 1.0, "area_mm2": 1.0},
            "search_seconds": 0.0,
            "candidates_trained": 1,
            "history": [],
        }
        restored = SearchResult.from_dict(payload)
        assert restored.hardware == AcceleratorConfig(8, 8, 16, "WS")
        assert restored.backend_name == "eyeriss"


# ----------------------------------------------------------------------
# Checkpoint / resume bit-identity (the core acceptance criterion)
# ----------------------------------------------------------------------
def _assert_results_bit_identical(first: SearchResult, second: SearchResult) -> None:
    """Everything except wall-clock time must match exactly (no tolerance)."""
    assert first.method == second.method
    assert np.array_equal(first.op_indices, second.op_indices)
    assert first.accuracy == second.accuracy or (
        math.isnan(first.accuracy) and math.isnan(second.accuracy)
    )
    assert first.hardware == second.hardware
    assert first.metrics.latency_ms == second.metrics.latency_ms
    assert first.metrics.energy_mj == second.metrics.energy_mj
    assert first.metrics.area_mm2 == second.metrics.area_mm2
    assert first.candidates_trained == second.candidates_trained
    assert first.history == second.history


TINY_RUN = dict(
    num_searchable=3,
    trainable_base_channels=4,
    image_samples=96,
    evaluator_samples=150,
    evaluator_hw_epochs=4,
    evaluator_cost_epochs=6,
    search_epochs=3,
    final_epochs=1,
)


class TestCheckpointResume:
    @pytest.fixture(scope="class")
    def search_env(self):
        nas_space = build_cifar_search_space(
            num_searchable=3, trainable_resolution=8, trainable_base_channels=4
        )
        hw_space = tiny_search_space()
        cost_table = LayerCostTable(nas_space, hw_space)
        images = make_cifar_like(num_samples=96, resolution=8, rng=0)
        train_set, val_set = train_val_split(images, val_fraction=0.25, rng=1)
        return nas_space, hw_space, cost_table, train_set, val_set

    def _trained_evaluator(self, nas_space, hw_space, cost_table):
        dataset = generate_evaluator_dataset(
            nas_space, hw_space, num_samples=150, cost_table=cost_table, rng=0
        )
        train_data, val_data = dataset.split(0.85, rng=1)
        evaluator = Evaluator(nas_space, hw_space, feature_forwarding=True, rng=2)
        train_evaluator(evaluator, train_data, val_data, hw_epochs=4, cost_epochs=6, rng=3)
        return evaluator

    def test_dance_resume_bit_identical(self, search_env, tmp_path):
        """Interrupt a DANCE run mid-search; the resumed result is bit-identical.

        The resume side gets a *fresh, untrained* evaluator: the checkpoint
        must restore the evaluator parameters (not just the supernet's) for
        the architecture gradients to match.
        """
        nas_space, hw_space, cost_table, train_set, val_set = search_env
        config = DanceConfig(
            search_epochs=3,
            warmup_epochs=1,
            final_training=ClassifierTrainingConfig(epochs=1),
        )
        runner = Runner(base_dir=tmp_path)

        uninterrupted = runner.execute(
            DanceSearcher(
                nas_space,
                self._trained_evaluator(nas_space, hw_space, cost_table),
                cost_table,
                config=config,
                rng=0,
            ),
            train_set,
            val_set,
            method_name="DANCE",
        )

        workdir = tmp_path / "dance-run"
        paused = runner.execute(
            DanceSearcher(
                nas_space,
                self._trained_evaluator(nas_space, hw_space, cost_table),
                cost_table,
                config=config,
                rng=0,
            ),
            train_set,
            val_set,
            method_name="DANCE",
            workdir=workdir,
            checkpoint_every=1,
            max_steps=1,
        )
        assert paused is None
        assert (workdir / "checkpoint.json").exists()

        untrained_evaluator = Evaluator(nas_space, hw_space, feature_forwarding=True, rng=42)
        resumed = runner.execute(
            DanceSearcher(nas_space, untrained_evaluator, cost_table, config=config, rng=0),
            train_set,
            val_set,
            state=load_checkpoint(workdir / "checkpoint.json")["state"],
        )
        _assert_results_bit_identical(uninterrupted, resumed)

    def test_baseline_resume_bit_identical(self, search_env, tmp_path):
        nas_space, _, cost_table, train_set, val_set = search_env
        config = BaselineConfig(
            search_epochs=3, flops_penalty=2.0, final_training=ClassifierTrainingConfig(epochs=1)
        )
        runner = Runner(base_dir=tmp_path)
        uninterrupted = runner.execute(
            BaselineSearcher(nas_space, cost_table, config=config, rng=1),
            train_set,
            val_set,
        )
        workdir = tmp_path / "baseline-run"
        assert (
            runner.execute(
                BaselineSearcher(nas_space, cost_table, config=config, rng=1),
                train_set,
                val_set,
                workdir=workdir,
                checkpoint_every=1,
                max_steps=2,
            )
            is None
        )
        resumed = runner.execute(
            BaselineSearcher(nas_space, cost_table, config=config, rng=1),
            train_set,
            val_set,
            state=load_checkpoint(workdir / "checkpoint.json")["state"],
        )
        _assert_results_bit_identical(uninterrupted, resumed)

    def test_rl_resume_bit_identical(self, search_env, tmp_path):
        nas_space, hw_space, cost_table, train_set, val_set = search_env
        config = RLCoExplorationConfig(
            num_candidates=3,
            candidate_training=ClassifierTrainingConfig(epochs=1),
            final_training=ClassifierTrainingConfig(epochs=1),
        )
        runner = Runner(base_dir=tmp_path)
        uninterrupted = runner.execute(
            RLCoExplorationSearcher(nas_space, hw_space, cost_table, config=config, rng=2),
            train_set,
            val_set,
        )
        workdir = tmp_path / "rl-run"
        assert (
            runner.execute(
                RLCoExplorationSearcher(nas_space, hw_space, cost_table, config=config, rng=2),
                train_set,
                val_set,
                workdir=workdir,
                checkpoint_every=1,
                max_steps=1,
            )
            is None
        )
        resumed = runner.execute(
            RLCoExplorationSearcher(nas_space, hw_space, cost_table, config=config, rng=2),
            train_set,
            val_set,
            state=load_checkpoint(workdir / "checkpoint.json")["state"],
        )
        _assert_results_bit_identical(uninterrupted, resumed)


# ----------------------------------------------------------------------
# Config-driven Runner flows (factory + run/resume/sweep/report)
# ----------------------------------------------------------------------
class TestRunnerFlows:
    def test_run_then_kill_then_resume_matches_uninterrupted(self, tmp_path):
        """The ISSUE acceptance flow: run --method dance, kill, resume."""
        config = ExperimentConfig(method="dance", seed=0, **TINY_RUN)
        uninterrupted = Runner(base_dir=tmp_path / "a").run(config)

        runner = Runner(base_dir=tmp_path / "b")
        assert runner.run(config, max_steps=1) is None  # "killed" after 1 epoch
        resumed = runner.resume()  # locates the unfinished run itself
        _assert_results_bit_identical(uninterrupted, resumed)
        assert (runner.workdir_for(config) / "result.json").exists()

    def test_resume_of_finished_run_returns_saved_result(self, tmp_path):
        config = ExperimentConfig(method="baseline", seed=0, **TINY_RUN)
        runner = Runner(base_dir=tmp_path)
        first = runner.run(config)
        again = runner.resume(workdir=runner.workdir_for(config))
        _assert_results_bit_identical(first, again)

    def test_resume_with_mismatched_config_is_rejected(self, tmp_path):
        """A workdir must never silently serve results of a different config."""
        config = ExperimentConfig(method="baseline", seed=0, **TINY_RUN)
        runner = Runner(base_dir=tmp_path)
        runner.run(config)
        changed = config.replace(search_epochs=config.search_epochs + 5)
        with pytest.raises(ValueError, match="saved config differs"):
            runner.run(changed, workdir=runner.workdir_for(config), resume=True)

    def test_run_method_name_override_is_persisted(self, tmp_path):
        config = ExperimentConfig(method="baseline", seed=0, retrain_final=False, **TINY_RUN)
        runner = Runner(base_dir=tmp_path)
        result = runner.run(config, method_name="Baseline (variant X)")
        assert result.method == "Baseline (variant X)"
        saved = runner.collect_results()
        assert [r.method for r in saved] == ["Baseline (variant X)"]

    def test_method_name_override_survives_resume(self, tmp_path):
        config = ExperimentConfig(method="baseline", seed=0, retrain_final=False, **TINY_RUN)
        runner = Runner(base_dir=tmp_path)
        assert runner.run(config, max_steps=1, method_name="Baseline (variant Y)") is None
        resumed = runner.run(config, resume=True, method_name="Baseline (variant Y)")
        assert resumed.method == "Baseline (variant Y)"

    def test_fresh_run_clears_stale_artifacts(self, tmp_path):
        """Re-running a workdir without resume must not leave old results around."""
        config = ExperimentConfig(method="baseline", seed=0, retrain_final=False, **TINY_RUN)
        runner = Runner(base_dir=tmp_path)
        runner.run(config)  # leaves result.json (+ checkpoint.json)
        workdir = runner.workdir_for(config)
        assert (workdir / "result.json").exists()
        # Fresh launch paused before finishing: the old result must be gone,
        # so resume continues the new run instead of serving the stale result.
        assert runner.run(config, max_steps=1) is None
        assert not (workdir / "result.json").exists()

    def test_rl_partial_finish_reports_actual_candidates(self, tmp_path):
        from repro.hwmodel import tiny_search_space as tiny_hw

        nas_space = build_cifar_search_space(
            num_searchable=3, trainable_resolution=8, trainable_base_channels=4
        )
        hw_space = tiny_hw()
        cost_table = LayerCostTable(nas_space, hw_space)
        images = make_cifar_like(num_samples=64, resolution=8, rng=0)
        train_set, val_set = train_val_split(images, val_fraction=0.25, rng=1)
        searcher = RLCoExplorationSearcher(
            nas_space,
            hw_space,
            cost_table,
            config=RLCoExplorationConfig(
                num_candidates=5, candidate_training=ClassifierTrainingConfig(epochs=1)
            ),
            rng=0,
        )
        searcher.setup(train_set, val_set)
        searcher.step()
        searcher.step()
        result = searcher.finish(retrain_final=False)
        assert result.candidates_trained == 2
        assert len(result.history) == 2

    def test_factory_builds_all_methods(self):
        for method in ("dance", "baseline", "baseline_flops", "rl"):
            config = ExperimentConfig(
                method=method, evaluator_samples=100, evaluator_hw_epochs=1, evaluator_cost_epochs=1
            )
            components = build_components(config, train_evaluator_net=(method == "dance"))
            assert isinstance(components.searcher, Searcher)
            assert components.searcher.method_name == config.method_name
            assert (components.evaluator is not None) == (method == "dance")

    def test_factory_builds_backend_spaces(self):
        for backend in ("eyeriss", "systolic", "simd"):
            config = ExperimentConfig(method="baseline", backend=backend)
            components = build_components(config)
            assert components.hw_space.backend_name == backend
            assert components.cost_table.backend_name == backend

    def test_cross_backend_resume_bit_identical(self, tmp_path):
        """Checkpoint/resume bit-identity holds on non-default backends.

        ``baseline`` on ``systolic`` covers the generic cost-table path;
        ``rl`` on ``simd`` additionally exercises the generic hardware
        sampling / decoding inside the searcher itself.
        """
        cases = [
            dict(method="baseline", backend="systolic", seed=0),
            dict(method="rl", backend="simd", seed=1, rl_candidates=2, rl_candidate_epochs=1),
        ]
        for index, case in enumerate(cases):
            config = ExperimentConfig(
                retrain_final=False, **case, **{**TINY_RUN, "search_epochs": 2}
            )
            uninterrupted = Runner(base_dir=tmp_path / f"a{index}").run(config)
            runner = Runner(base_dir=tmp_path / f"b{index}")
            assert runner.run(config, max_steps=1) is None  # "killed" mid-search
            resumed = runner.resume()
            _assert_results_bit_identical(uninterrupted, resumed)
            assert resumed.backend_name == case["backend"]

    def test_sweep_grid_crosses_backends(self, tmp_path):
        from repro.experiments import SweepPlan

        config = ExperimentConfig(
            method="baseline", seed=0, retrain_final=False, **{**TINY_RUN, "search_epochs": 1}
        )
        plan = SweepPlan.from_grid(
            config, methods=["baseline"], seeds=[0], backends=["eyeriss", "systolic"]
        )
        assert [item.name for item in plan] == [
            "baseline-cifar-seed0",
            "baseline-cifar-seed0-systolic",
        ]
        runner = Runner(base_dir=tmp_path)
        results = runner.sweep(
            config, methods=["baseline"], seeds=[0], backends=["eyeriss", "systolic"]
        )
        assert sorted(result.backend_name for result in results) == ["eyeriss", "systolic"]

    def test_sweep_and_report(self, tmp_path):
        config = ExperimentConfig(
            seed=0, retrain_final=False, **{**TINY_RUN, "search_epochs": 1}
        )
        runner = Runner(base_dir=tmp_path)
        results = runner.sweep(config, methods=["baseline", "rl"], seeds=[0], title="test sweep")
        assert len(results) == 2
        assert (tmp_path / "REPORT.txt").exists()
        report = runner.report()
        assert "Baseline (No penalty) + HW" in report
        assert "RL co-exploration" in report


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def _tiny_args(self):
        return [
            f"--set={key}={value}"
            for key, value in {**TINY_RUN, "search_epochs": 2, "final_epochs": 1}.items()
        ]

    def test_run_resume_report_smoke(self, tmp_path, capsys):
        from repro.__main__ import main

        runs = str(tmp_path / "runs")
        base = ["--runs-dir", runs]
        assert main(base + ["run", "--method", "baseline", "--seed", "0", "--max-steps", "1",
                            *self._tiny_args()]) == 0
        assert "Paused" in capsys.readouterr().out
        assert main(base + ["resume"]) == 0
        assert "Baseline (No penalty) + HW" in capsys.readouterr().out
        assert main(base + ["report"]) == 0
        assert "Search-cost comparison" in capsys.readouterr().out

    def test_cli_override_validation(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["--runs-dir", str(tmp_path), "run", "--set", "not-a-pair"])

    def test_cli_backend_run_resume_and_json_report(self, tmp_path, capsys):
        """`run --set backend=...` completes end to end, resumes, and the
        aggregated status is available machine-readably."""
        from repro.__main__ import main

        runs = str(tmp_path / "runs")
        base = ["--runs-dir", runs]
        assert main(base + ["run", "--method", "baseline", "--seed", "0", "--max-steps", "1",
                            "--set", "backend=systolic", "--set", "retrain_final=false",
                            *self._tiny_args()]) == 0
        assert "Paused" in capsys.readouterr().out
        assert main(base + ["resume"]) == 0
        assert "Baseline (No penalty) + HW" in capsys.readouterr().out
        assert main(base + ["report", "--format", "json"]) == 0
        raw = capsys.readouterr().out
        # retrain_final=false -> NaN accuracy, which must surface as null so
        # the document stays strict RFC-8259 JSON (no bare NaN tokens).
        assert "NaN" not in raw
        payload = json.loads(raw)
        assert payload["summary"]["results"] == 1
        assert payload["results"][0]["backend"] == "systolic"
        assert payload["results"][0]["accuracy"] is None
        (name, entry), = payload["runs"].items()
        assert name == "baseline-cifar-seed0-systolic"
        assert entry["state"] == "finished"
