"""Tests for the accelerator configuration, design space and workload models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hwmodel import (
    AcceleratorConfig,
    ConvLayerShape,
    Dataflow,
    HardwareSearchSpace,
    NetworkWorkload,
    conv_layer,
    mbconv_layers,
    tiny_search_space,
)


class TestDataflow:
    def test_from_name_accepts_strings_and_enum(self):
        assert Dataflow.from_name("ws") is Dataflow.WEIGHT_STATIONARY
        assert Dataflow.from_name("RS") is Dataflow.ROW_STATIONARY
        assert Dataflow.from_name(Dataflow.OUTPUT_STATIONARY) is Dataflow.OUTPUT_STATIONARY

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError):
            Dataflow.from_name("XX")


class TestAcceleratorConfig:
    def test_derived_quantities(self):
        config = AcceleratorConfig(pe_x=12, pe_y=10, rf_size=16, dataflow="WS")
        assert config.num_pes == 120
        assert config.total_rf_words == 120 * 16

    def test_dict_roundtrip(self):
        config = AcceleratorConfig(8, 24, 64, Dataflow.ROW_STATIONARY)
        assert AcceleratorConfig.from_dict(config.as_dict()) == config

    def test_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(0, 8, 16, "WS")
        with pytest.raises(ValueError):
            AcceleratorConfig(8, 8, 0, "WS")


class TestHardwareSearchSpace:
    def test_default_space_size_and_width(self):
        space = HardwareSearchSpace()
        assert len(space) == 9 * 9 * 5 * 3
        assert space.encoding_width == 9 + 9 + 5 + 3

    def test_enumeration_covers_all_unique_configs(self):
        space = tiny_search_space()
        configs = list(space.enumerate())
        assert len(configs) == len(space)
        assert len(set(configs)) == len(configs)

    def test_contains(self):
        space = tiny_search_space()
        assert space.contains(AcceleratorConfig(8, 16, 64, "OS"))
        assert not space.contains(AcceleratorConfig(9, 16, 64, "OS"))

    def test_encode_decode_roundtrip_for_every_config(self):
        space = tiny_search_space()
        for config in space.enumerate():
            encoding = space.encode(config)
            assert encoding.shape == (space.encoding_width,)
            assert np.isclose(encoding.sum(), 4.0)  # one-hot per field
            assert space.decode(encoding) == config

    def test_encode_rejects_out_of_space_config(self):
        with pytest.raises(ValueError):
            tiny_search_space().encode(AcceleratorConfig(9, 9, 9, "WS"))

    def test_decode_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            tiny_search_space().decode(np.zeros(5))

    def test_soft_encoding_decodes_to_argmax(self):
        space = tiny_search_space()
        config = AcceleratorConfig(16, 24, 16, "RS")
        soft = space.encode(config) * 0.7 + 0.1
        assert space.decode(soft) == config

    def test_field_slices_partition_encoding(self):
        space = HardwareSearchSpace()
        slices = space.field_slices()
        covered = sorted(
            index for field_slice in slices.values() for index in range(field_slice.start, field_slice.stop)
        )
        assert covered == list(range(space.encoding_width))

    def test_sampling_stays_in_space(self):
        space = tiny_search_space()
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert space.contains(space.sample(rng=rng))

    def test_duplicate_choices_rejected(self):
        with pytest.raises(ValueError):
            HardwareSearchSpace(pe_x_choices=(8, 8))

    def test_encode_indices_match_choice_positions(self):
        space = tiny_search_space()
        config = AcceleratorConfig(24, 8, 4, "OS")
        indices = space.encode_indices(config)
        assert space.pe_x_choices[indices["pe_x"]] == 24
        assert space.pe_y_choices[indices["pe_y"]] == 8
        assert space.rf_choices[indices["rf_size"]] == 4
        assert space.dataflow_choices[indices["dataflow"]] is Dataflow.OUTPUT_STATIONARY


class TestConvLayerShape:
    def test_macs_formula(self):
        layer = ConvLayerShape("l", n=1, c=16, h=8, w=8, k=32, r=3, s=3)
        assert layer.macs == 1 * 32 * 16 * 8 * 8 * 3 * 3
        assert layer.flops == 2 * layer.macs

    def test_stride_halves_output(self):
        layer = ConvLayerShape("l", n=1, c=8, h=16, w=16, k=8, r=3, s=3, stride=2)
        assert layer.out_h == 8 and layer.out_w == 8

    def test_depthwise_macs_divide_by_groups(self):
        dense = ConvLayerShape("d", n=1, c=16, h=8, w=8, k=16, r=3, s=3)
        depthwise = ConvLayerShape("dw", n=1, c=16, h=8, w=8, k=16, r=3, s=3, groups=16)
        assert depthwise.macs * 16 == dense.macs

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvLayerShape("bad", n=0, c=1, h=1, w=1, k=1, r=1, s=1)
        with pytest.raises(ValueError):
            ConvLayerShape("bad", n=1, c=3, h=8, w=8, k=4, r=3, s=3, groups=2)

    def test_scaled_batch(self):
        layer = conv_layer("c", 3, 8, 16, 3)
        scaled = layer.scaled(4)
        assert scaled.n == 4 and scaled.macs == 4 * layer.macs

    @settings(max_examples=30, deadline=None)
    @given(
        c=st.integers(1, 64),
        k=st.integers(1, 64),
        h=st.integers(4, 32),
        r=st.sampled_from([1, 3, 5, 7]),
        stride=st.sampled_from([1, 2]),
    )
    def test_property_sizes_positive(self, c, k, h, r, stride):
        layer = ConvLayerShape("p", n=1, c=c, h=h, w=h, k=k, r=r, s=r, stride=stride)
        assert layer.macs > 0
        assert layer.out_h >= 1 and layer.out_w >= 1
        assert layer.total_data == layer.input_size + layer.weight_size + layer.output_size


class TestWorkloads:
    def test_network_workload_totals(self):
        workload = NetworkWorkload("net", [conv_layer("a", 3, 8, 8, 3), conv_layer("b", 8, 8, 8, 3)])
        assert workload.total_macs == sum(layer.macs for layer in workload)
        assert len(workload) == 2

    def test_mbconv_expansion_structure(self):
        layers = mbconv_layers("blk", in_channels=16, out_channels=24, feature_size=8, kernel_size=5, expansion=6)
        assert len(layers) == 3
        expand, depthwise, project = layers
        assert expand.k == 16 * 6
        assert depthwise.groups == 16 * 6
        assert depthwise.r == 5
        assert project.k == 24

    def test_mbconv_stride_shrinks_projection_input(self):
        layers = mbconv_layers("blk", 16, 16, feature_size=8, kernel_size=3, expansion=3, stride=2)
        assert layers[2].h == 4

    def test_mbconv_rejects_bad_expansion(self):
        with pytest.raises(ValueError):
            mbconv_layers("blk", 8, 8, 8, 3, expansion=0)

    def test_workload_scaled(self):
        workload = NetworkWorkload("net", [conv_layer("a", 3, 8, 8, 3)])
        assert workload.scaled(8).total_macs == 8 * workload.total_macs
