"""Parity and caching tests for the batched / table / memoised cost paths.

The vectorised pipeline (LayerBatch x ConfigBatch kernels, the CostTable and
the per-layer LRU memo) must produce **bit-identical** HardwareMetrics to the
scalar reference oracle — the pre-vectorisation per-pair implementation kept
as ``layer_latency_ms_reference`` / ``layer_energy_mj_reference``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hwmodel import (
    AcceleratorConfig,
    AcceleratorCostModel,
    ConfigBatch,
    ConvLayerShape,
    CostTable,
    Dataflow,
    HardwareMetrics,
    LayerBatch,
    conv_layer,
    edap_cost,
    mbconv_layers,
    tiny_search_space,
)
from repro.nas import build_cifar_search_space


@pytest.fixture(scope="module")
def layer_grid():
    """A shape grid covering the behaviours the mapping analysis branches on."""
    return [
        conv_layer("plain3x3", 32, 64, 32, 3),
        conv_layer("stem", 3, 32, 32, 3),
        conv_layer("pointwise", 96, 160, 4, 1),
        conv_layer("strided", 24, 48, 16, 3, stride=2),
        ConvLayerShape("depthwise", n=1, c=64, h=32, w=32, k=64, r=5, s=5, groups=64),
        ConvLayerShape("dw_strided", n=1, c=96, h=16, w=16, k=96, r=7, s=7, groups=96, stride=2),
        conv_layer("batched", 48, 48, 8, 3, batch=4),
    ]


@pytest.fixture(scope="module")
def config_grid():
    """All dataflows crossed with extreme PE-array and RF sizes."""
    return [
        AcceleratorConfig(pe_x, pe_y, rf, dataflow)
        for dataflow in Dataflow
        for pe_x, pe_y in ((8, 8), (8, 24), (24, 8), (24, 24), (16, 16))
        for rf in (4, 16, 64)
    ]


@pytest.fixture(scope="module")
def batch_cost_model():
    return AcceleratorCostModel()


class TestBatchedKernelParity:
    def test_layer_batch_matches_scalar_reference_bitwise(
        self, batch_cost_model, layer_grid, config_grid
    ):
        latency, energy, area = batch_cost_model.evaluate_layer_batch(layer_grid, config_grid)
        assert latency.shape == (len(layer_grid), len(config_grid))
        for i, layer in enumerate(layer_grid):
            for j, config in enumerate(config_grid):
                assert latency[i, j] == batch_cost_model.latency_model.layer_latency_ms_reference(
                    layer, config
                )
                assert energy[i, j] == batch_cost_model.energy_model.layer_energy_mj_reference(
                    layer, config
                )
                assert area[j] == batch_cost_model.area_model.total_area_mm2(config)

    def test_scalar_wrappers_match_reference_bitwise(
        self, batch_cost_model, layer_grid, config_grid
    ):
        for layer in layer_grid[:3]:
            for config in config_grid[:6]:
                assert batch_cost_model.latency_model.layer_latency_ms(
                    layer, config
                ) == batch_cost_model.latency_model.layer_latency_ms_reference(layer, config)
                assert batch_cost_model.energy_model.layer_energy_mj(
                    layer, config
                ) == batch_cost_model.energy_model.layer_energy_mj_reference(layer, config)

    def test_network_batch_matches_sequential_accumulation(
        self, batch_cost_model, layer_grid, config_grid
    ):
        latency, energy, area = batch_cost_model.evaluate_network_batch(layer_grid, config_grid)
        for j, config in enumerate(config_grid):
            expected_latency = 0.0
            expected_energy = 0.0
            for layer in layer_grid:
                expected_latency += batch_cost_model.latency_model.layer_latency_ms_reference(
                    layer, config
                )
                expected_energy += batch_cost_model.energy_model.layer_energy_mj_reference(
                    layer, config
                )
            assert latency[j] == expected_latency
            assert energy[j] == expected_energy
        # The HardwareMetrics-returning wrapper goes through the same path.
        metrics = batch_cost_model.evaluate(layer_grid, config_grid[0])
        assert metrics.latency_ms == latency[0]
        assert metrics.energy_mj == energy[0]
        assert metrics.area_mm2 == area[0]

    def test_mbconv_triplet_parity(self, batch_cost_model):
        layers = mbconv_layers("mb", 48, 72, 16, 7, 6, stride=2)
        config = AcceleratorConfig(16, 16, 16, "RS")
        latency, energy, _ = batch_cost_model.evaluate_layer_batch(layers, [config])
        for i, layer in enumerate(layers):
            assert latency[i, 0] == batch_cost_model.latency_model.layer_latency_ms_reference(
                layer, config
            )
            assert energy[i, 0] == batch_cost_model.energy_model.layer_energy_mj_reference(
                layer, config
            )

    def test_empty_batches_rejected(self):
        with pytest.raises(ValueError):
            LayerBatch([])
        with pytest.raises(ValueError):
            ConfigBatch([])


class TestCostTableParity:
    @pytest.fixture(scope="class")
    def nas_space(self):
        return build_cifar_search_space()

    @pytest.fixture(scope="class")
    def table(self, nas_space):
        return CostTable(nas_space, tiny_search_space())

    def test_table_entries_match_scalar_reference_bitwise(self, nas_space, table):
        cost_model = table.cost_model
        for j, config in enumerate(table.configs[:9]):
            expected_latency = 0.0
            expected_energy = 0.0
            for layer in nas_space.fixed_workload_layers():
                expected_latency += cost_model.latency_model.layer_latency_ms_reference(
                    layer, config
                )
                expected_energy += cost_model.energy_model.layer_energy_mj_reference(layer, config)
            assert table.fixed_latency[j] == expected_latency
            assert table.fixed_energy[j] == expected_energy
            assert table.area[j] == cost_model.area_model.total_area_mm2(config)
        for position, op_idx in ((0, 0), (3, 4), (8, 5)):
            layers = nas_space.op_layers(position, op_idx)
            for j, config in enumerate(table.configs[:5]):
                expected = 0.0
                for layer in layers:
                    expected += cost_model.latency_model.layer_latency_ms_reference(layer, config)
                assert table.op_latency[position, op_idx, j] == expected

    def test_zero_op_rows_are_empty(self, nas_space, table):
        from repro.nas import op_index

        zero = op_index("zero")
        assert np.all(table.op_latency[:, zero, :] == 0.0)
        assert np.all(table.op_energy[:, zero, :] == 0.0)

    def test_batch_labeling_matches_per_arch_oracle(self, nas_space, table):
        rng = np.random.default_rng(7)
        archs = rng.integers(0, nas_space.num_ops, size=(32, nas_space.num_searchable))
        best, latency, energy, area = table.optimal_configs_batch(archs)
        for i in range(archs.shape[0]):
            config, metrics = table.optimal_config(archs[i])
            assert table.configs[best[i]] == config
            assert latency[i] == metrics.latency_ms
            assert energy[i] == metrics.energy_mj
            assert area[i] == metrics.area_mm2

    def test_batch_labeling_supports_cost_function_objects(self, nas_space, table):
        from repro.core.cost_functions import LinearCostFunction

        cost_function = LinearCostFunction(2.0, 3.0, 0.5)
        rng = np.random.default_rng(11)
        archs = rng.integers(0, nas_space.num_ops, size=(8, nas_space.num_searchable))
        best, latency, energy, area = table.optimal_configs_batch(
            archs, cost_function=cost_function.scalar
        )
        for i in range(archs.shape[0]):
            config, metrics = table.optimal_config(archs[i], cost_function=cost_function.scalar)
            assert table.configs[best[i]] == config
            assert latency[i] == metrics.latency_ms

    def test_opaque_cost_function_falls_back_to_loop(self, nas_space, table):
        def latency_only(metrics: HardwareMetrics) -> float:
            return metrics.latency_ms

        arch = np.zeros(nas_space.num_searchable, dtype=np.int64)
        config, metrics = table.optimal_config(arch, cost_function=latency_only)
        latency, energy, area = table.metrics_per_config(arch)
        best = int(np.argmin(latency))
        assert config == table.configs[best]
        assert metrics.latency_ms == latency[best]

    def test_metrics_for_unknown_config_rejected(self, nas_space, table):
        arch = np.zeros(nas_space.num_searchable, dtype=np.int64)
        with pytest.raises(ValueError):
            table.metrics_for(arch, AcceleratorConfig(9, 9, 5, "WS"))

    def test_config_luts_match_encodings(self, table):
        encodings = table.config_encodings
        class_indices = table.config_class_indices
        for j in (0, len(table.configs) // 2, len(table.configs) - 1):
            config = table.configs[j]
            assert np.array_equal(encodings[j], table.hw_space.encode(config))
            expected = table.hw_space.encode_indices(config)
            for field, value in expected.items():
                assert class_indices[field][j] == value


class TestLayerMemo:
    def test_cache_hits_on_repeat_queries(self):
        cost_model = AcceleratorCostModel()
        layer = conv_layer("memo", 16, 32, 16, 3)
        config = AcceleratorConfig(16, 16, 16, "WS")
        assert cost_model.cache_info().hits == 0
        first = cost_model.evaluate_layer(layer, config)
        assert cost_model.cache_info().misses == 1
        second = cost_model.evaluate_layer(layer, config)
        info = cost_model.cache_info()
        assert info.hits == 1 and info.misses == 1
        assert first is second  # served from the memo, not recomputed

        # An equal-but-distinct key also hits (hash/eq based, not identity).
        twin = conv_layer("memo", 16, 32, 16, 3)
        cost_model.evaluate_layer(twin, AcceleratorConfig(16, 16, 16, "WS"))
        assert cost_model.cache_info().hits == 2

        cost_model.cache_clear()
        assert cost_model.cache_info().currsize == 0

    def test_cache_can_be_disabled(self):
        cost_model = AcceleratorCostModel(cache_size=0)
        layer = conv_layer("memo", 16, 32, 16, 3)
        config = AcceleratorConfig(16, 16, 16, "WS")
        assert cost_model.cache_info() is None
        first = cost_model.evaluate_layer(layer, config)
        second = cost_model.evaluate_layer(layer, config)
        assert first == second and first is not second

    def test_keys_are_cheaply_hashable(self):
        layer = conv_layer("h", 16, 32, 16, 3)
        config = AcceleratorConfig(16, 16, 16, "RS")
        assert hash(layer) == hash(conv_layer("h", 16, 32, 16, 3))
        assert hash(config) == hash(AcceleratorConfig(16, 16, 16, "RS"))
        # The cached value is stored on first use and stays consistent.
        assert hash(layer) == hash(layer)
        assert layer._cached_hash == hash(layer)  # type: ignore[attr-defined]


class TestDatasetGenerationParity:
    def test_vectorised_labeling_matches_loop(self):
        """The batched dataset path reproduces the historical per-sample loop."""
        from repro.evaluator import generate_evaluator_dataset
        from repro.evaluator.encoding import EvaluatorEncoding
        from repro.utils.seeding import as_rng

        nas_space = build_cifar_search_space()
        hw_space = tiny_search_space()
        table = CostTable(nas_space, hw_space)
        num_samples = 64

        dataset = generate_evaluator_dataset(
            nas_space, hw_space, num_samples=num_samples, cost_table=table, rng=123
        )

        # Reference: the original sample-at-a-time loop.
        generator = as_rng(123)
        encoding = EvaluatorEncoding(nas_space=nas_space, hw_space=hw_space)
        for sample_index in range(num_samples):
            op_indices = nas_space.random_architecture(rng=generator)
            best_config, best_metrics = table.optimal_config(op_indices, cost_function=edap_cost)
            arch_one_hot = encoding.encode_architecture(op_indices)
            if generator.uniform() < 0.25:
                matrix = arch_one_hot.reshape(nas_space.num_searchable, nas_space.num_ops)
                noise = generator.dirichlet(
                    np.ones(nas_space.num_ops), size=nas_space.num_searchable
                )
                soft = 4.0 * matrix + noise
                soft = soft / soft.sum(axis=1, keepdims=True)
                expected_arch = soft.reshape(-1)
            else:
                expected_arch = arch_one_hot
            assert np.array_equal(dataset.arch_encodings[sample_index], expected_arch)
            assert np.array_equal(
                dataset.hw_encodings[sample_index], encoding.encode_hardware(best_config)
            )
            for field_name, class_index in encoding.hardware_class_indices(best_config).items():
                assert dataset.hw_class_indices[field_name][sample_index] == class_index
            assert np.array_equal(
                dataset.metric_targets[sample_index], encoding.metrics_to_vector(best_metrics)
            )

    def test_chunked_labeling_is_chunk_size_invariant(self):
        from repro.evaluator import generate_evaluator_dataset

        nas_space = build_cifar_search_space()
        hw_space = tiny_search_space()
        table = CostTable(nas_space, hw_space)
        small = generate_evaluator_dataset(
            nas_space, hw_space, num_samples=40, cost_table=table, rng=5, label_chunk_size=7
        )
        large = generate_evaluator_dataset(
            nas_space, hw_space, num_samples=40, cost_table=table, rng=5, label_chunk_size=4096
        )
        assert np.array_equal(small.metric_targets, large.metric_targets)
        assert np.array_equal(small.hw_encodings, large.hw_encodings)
