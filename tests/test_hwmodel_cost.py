"""Tests for the analytical latency / energy / area oracle and the HW generator.

These tests pin down the *qualitative* behaviours the paper relies on: more
PEs reduce latency but raise area, bigger register files trade energy/area
for fewer memory stalls, dataflow choice interacts with the layer shape, and
the exhaustive generator returns the true optimum of the discretised space.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hwmodel import (
    AcceleratorConfig,
    AcceleratorCostModel,
    ConvLayerShape,
    Dataflow,
    ExhaustiveHardwareGenerator,
    HardwareMetrics,
    NetworkWorkload,
    aggregate_metrics,
    analyze_mapping,
    conv_layer,
    edap_cost,
    linear_cost,
    make_linear_cost,
    utilization_by_dataflow,
)


@pytest.fixture(scope="module")
def reference_layer():
    return conv_layer("ref", in_channels=32, out_channels=64, feature_size=32, kernel_size=3)


@pytest.fixture(scope="module")
def reference_workload(reference_layer):
    return NetworkWorkload("ref_net", [reference_layer, conv_layer("second", 64, 64, 16, 3)])


class TestHardwareMetrics:
    def test_edap_units(self):
        metrics = HardwareMetrics(latency_ms=2.0, energy_mj=3.0, area_mm2=4.0)
        assert metrics.edap == pytest.approx(24.0)
        assert metrics.edp == pytest.approx(6.0)

    def test_addition_sums_latency_energy_keeps_area(self):
        a = HardwareMetrics(1.0, 2.0, 5.0)
        b = HardwareMetrics(3.0, 4.0, 5.0)
        total = a + b
        assert total.latency_ms == 4.0
        assert total.energy_mj == 6.0
        assert total.area_mm2 == 5.0

    def test_aggregate_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate_metrics([])

    def test_negative_metrics_rejected(self):
        with pytest.raises(ValueError):
            HardwareMetrics(-1.0, 1.0, 1.0)

    def test_linear_and_edap_cost_helpers(self):
        metrics = HardwareMetrics(1.0, 2.0, 3.0)
        assert linear_cost(metrics, 1.0, 1.0, 1.0) == pytest.approx(6.0)
        assert edap_cost(metrics) == pytest.approx(6.0)


class TestMappingAnalysis:
    def test_more_pes_never_slower(self, reference_layer):
        small = AcceleratorConfig(8, 8, 16, "RS")
        large = AcceleratorConfig(24, 24, 16, "RS")
        assert (
            analyze_mapping(reference_layer, large).compute_cycles
            < analyze_mapping(reference_layer, small).compute_cycles
        )

    def test_larger_rf_reduces_buffer_traffic(self, reference_layer):
        small_rf = AcceleratorConfig(16, 16, 4, "WS")
        large_rf = AcceleratorConfig(16, 16, 64, "WS")
        assert (
            analyze_mapping(reference_layer, large_rf).buffer_traffic_words
            <= analyze_mapping(reference_layer, small_rf).buffer_traffic_words
        )

    def test_utilization_bounded(self, reference_layer):
        for dataflow in Dataflow:
            config = AcceleratorConfig(16, 16, 16, dataflow)
            mapping = analyze_mapping(reference_layer, config)
            assert 0.0 < mapping.spatial_utilization <= 1.0

    def test_depthwise_utilization_poor_on_weight_stationary(self):
        # The TPU/separable-convolution interaction from the paper's intro:
        # a depthwise layer has one input channel per group, so a weight
        # stationary array that parallelises over input channels starves.
        depthwise = ConvLayerShape("dw", n=1, c=64, h=32, w=32, k=64, r=3, s=3, groups=64)
        config = AcceleratorConfig(16, 16, 16, "WS")
        utilizations = utilization_by_dataflow(depthwise, config)
        assert utilizations[Dataflow.WEIGHT_STATIONARY] < utilizations[Dataflow.OUTPUT_STATIONARY]
        assert utilizations[Dataflow.WEIGHT_STATIONARY] < utilizations[Dataflow.ROW_STATIONARY]

    def test_channel_heavy_layer_prefers_ws_over_os_utilization(self):
        late_layer = ConvLayerShape("late", n=1, c=96, h=4, w=4, k=96, r=3, s=3)
        config = AcceleratorConfig(16, 16, 16, "WS")
        utilizations = utilization_by_dataflow(late_layer, config)
        assert utilizations[Dataflow.WEIGHT_STATIONARY] > utilizations[Dataflow.OUTPUT_STATIONARY]


class TestCostModel:
    def test_more_pes_lower_latency_higher_area(self, cost_model, reference_workload):
        small = AcceleratorConfig(8, 8, 16, "RS")
        large = AcceleratorConfig(24, 24, 16, "RS")
        metrics_small = cost_model.evaluate(reference_workload, small)
        metrics_large = cost_model.evaluate(reference_workload, large)
        assert metrics_large.latency_ms < metrics_small.latency_ms
        assert metrics_large.area_mm2 > metrics_small.area_mm2

    def test_bigger_rf_larger_area(self, cost_model, reference_workload):
        small = AcceleratorConfig(16, 16, 4, "RS")
        large = AcceleratorConfig(16, 16, 64, "RS")
        assert (
            cost_model.evaluate(reference_workload, large).area_mm2
            > cost_model.evaluate(reference_workload, small).area_mm2
        )

    def test_metrics_positive_for_all_configs(self, cost_model, reference_workload, hw_space):
        for config in hw_space.enumerate():
            metrics = cost_model.evaluate(reference_workload, config)
            assert metrics.latency_ms > 0
            assert metrics.energy_mj > 0
            assert metrics.area_mm2 > 0

    def test_network_latency_is_sum_of_layers(self, cost_model, reference_workload):
        config = AcceleratorConfig(16, 16, 16, "RS")
        per_layer = [cost_model.evaluate_layer(layer, config) for layer in reference_workload]
        total = cost_model.evaluate(reference_workload, config)
        assert total.latency_ms == pytest.approx(sum(m.latency_ms for m in per_layer))
        assert total.energy_mj == pytest.approx(sum(m.energy_mj for m in per_layer))
        assert total.area_mm2 == pytest.approx(per_layer[0].area_mm2)

    def test_empty_workload_rejected(self, cost_model):
        with pytest.raises(ValueError):
            cost_model.evaluate([], AcceleratorConfig(8, 8, 4, "WS"))

    def test_detailed_report_covers_every_layer(self, cost_model, reference_workload):
        reports = cost_model.evaluate_detailed(reference_workload, AcceleratorConfig(8, 8, 4, "WS"))
        assert len(reports) == len(reference_workload)
        assert all(report.latency_ms > 0 for report in reports)

    def test_bigger_network_costs_more(self, cost_model):
        config = AcceleratorConfig(16, 16, 16, "RS")
        small_net = NetworkWorkload("s", [conv_layer("a", 16, 16, 16, 3)])
        big_net = NetworkWorkload("b", [conv_layer("a", 16, 16, 16, 3), conv_layer("b", 16, 32, 16, 3)])
        assert (
            cost_model.evaluate(big_net, config).latency_ms
            > cost_model.evaluate(small_net, config).latency_ms
        )

    @settings(max_examples=20, deadline=None)
    @given(
        pe_x=st.sampled_from([8, 16, 24]),
        pe_y=st.sampled_from([8, 16, 24]),
        rf=st.sampled_from([4, 16, 64]),
        dataflow=st.sampled_from(list(Dataflow)),
    )
    def test_property_metrics_finite_positive(self, pe_x, pe_y, rf, dataflow):
        cost_model = AcceleratorCostModel()
        layer = conv_layer("prop", 24, 48, 16, 3)
        metrics = cost_model.evaluate_layer(layer, AcceleratorConfig(pe_x, pe_y, rf, dataflow))
        for value in metrics.as_vector():
            assert np.isfinite(value) and value > 0


class TestExhaustiveGenerator:
    def test_generate_finds_true_minimum(self, cost_model, reference_workload, hw_space):
        generator = ExhaustiveHardwareGenerator(hw_space, cost_model, cost_function=edap_cost)
        result = generator.generate(reference_workload)
        brute_force = min(
            edap_cost(cost_model.evaluate(reference_workload, config)) for config in hw_space.enumerate()
        )
        assert result.cost == pytest.approx(brute_force)
        assert result.evaluations == len(hw_space)

    def test_generate_rejects_empty_workload(self, hw_space):
        with pytest.raises(ValueError):
            ExhaustiveHardwareGenerator(hw_space).generate([])

    def test_top_k_sorted(self, cost_model, reference_workload, hw_space):
        generator = ExhaustiveHardwareGenerator(hw_space, cost_model)
        top = generator.top_k(reference_workload, k=5)
        costs = [entry.cost for entry in top]
        assert costs == sorted(costs)
        assert len(top) == 5

    def test_linear_cost_function_changes_optimum_weighting(self, cost_model, reference_workload, hw_space):
        latency_focused = ExhaustiveHardwareGenerator(
            hw_space, cost_model, cost_function=make_linear_cost(100.0, 0.0, 0.0)
        ).generate(reference_workload)
        area_focused = ExhaustiveHardwareGenerator(
            hw_space, cost_model, cost_function=make_linear_cost(0.0, 0.0, 100.0)
        ).generate(reference_workload)
        # Optimising purely for latency should not yield more area-efficient
        # hardware than optimising purely for area.
        assert latency_focused.metrics.latency_ms <= area_focused.metrics.latency_ms
        assert area_focused.metrics.area_mm2 <= latency_focused.metrics.area_mm2
