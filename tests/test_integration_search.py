"""Integration tests: full search pipelines at miniature scale.

These tests run the complete pipelines (evaluator training, DANCE search,
baseline search, RL comparator) on tiny datasets and a reduced search space
so they finish in a few tens of seconds while still exercising every code
path an experiment uses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BaselineConfig,
    BaselineSearcher,
    ClassifierTrainingConfig,
    DanceConfig,
    DanceSearcher,
    EDAPCostFunction,
    LinearCostFunction,
    RLCoExplorationConfig,
    RLCoExplorationSearcher,
    SearchResult,
)
from repro.data import make_cifar_like, train_val_split
from repro.evaluator import Evaluator, LayerCostTable, generate_evaluator_dataset, train_evaluator
from repro.hwmodel import tiny_search_space
from repro.nas import ArchitectureParameters, build_cifar_search_space


@pytest.fixture(scope="module")
def small_space():
    return build_cifar_search_space(num_searchable=3, trainable_resolution=8, trainable_base_channels=4)


@pytest.fixture(scope="module")
def small_hw_space():
    return tiny_search_space()


@pytest.fixture(scope="module")
def small_cost_table(small_space, small_hw_space):
    return LayerCostTable(small_space, small_hw_space)


@pytest.fixture(scope="module")
def trained_evaluator(small_space, small_hw_space, small_cost_table):
    dataset = generate_evaluator_dataset(
        small_space, small_hw_space, num_samples=400, cost_table=small_cost_table, rng=0
    )
    train, val = dataset.split(0.85, rng=1)
    evaluator = Evaluator(small_space, small_hw_space, feature_forwarding=True, rng=2)
    train_evaluator(evaluator, train, val, hw_epochs=15, cost_epochs=30, rng=3)
    return evaluator


@pytest.fixture(scope="module")
def tiny_images():
    dataset = make_cifar_like(num_samples=160, resolution=8, rng=0)
    return train_val_split(dataset, val_fraction=0.25, rng=1)


FAST_SEARCH = DanceConfig(
    search_epochs=2,
    batch_size=32,
    lambda_2=1.0,
    warmup_epochs=1,
    final_training=ClassifierTrainingConfig(epochs=1, batch_size=32),
)


class TestDanceSearch:
    def test_search_returns_valid_result(self, small_space, small_hw_space, small_cost_table, trained_evaluator, tiny_images):
        train_set, val_set = tiny_images
        searcher = DanceSearcher(
            small_space, trained_evaluator, small_cost_table, config=FAST_SEARCH, rng=0
        )
        result = searcher.search(train_set, val_set, method_name="DANCE (test)")
        assert isinstance(result, SearchResult)
        assert result.op_indices.shape == (small_space.num_searchable,)
        assert small_hw_space.contains(result.hardware)
        assert result.metrics.latency_ms > 0
        assert 0.0 <= result.accuracy <= 1.0
        assert result.candidates_trained == 1
        assert len(result.history) == FAST_SEARCH.search_epochs

    def test_strong_cost_pressure_prunes_architecture(self, small_space, small_hw_space, small_cost_table, trained_evaluator, tiny_images):
        """With an overwhelming lambda_2 the search must shrink the network (Section 3.4)."""
        train_set, val_set = tiny_images
        heavy_cost = DanceConfig(
            search_epochs=3,
            batch_size=32,
            lambda_2=200.0,
            warmup_epochs=0,
            arch_lr=0.05,
            final_training=ClassifierTrainingConfig(epochs=1),
        )
        searcher = DanceSearcher(
            small_space, trained_evaluator, small_cost_table, config=heavy_cost, rng=1
        )
        result = searcher.search(train_set, val_set, method_name="DANCE (heavy cost)", retrain_final=False)
        light_result_flops = small_space.architecture_flops(result.op_indices)

        no_cost = DanceConfig(
            search_epochs=3,
            batch_size=32,
            lambda_2=0.0,
            warmup_epochs=0,
            final_training=ClassifierTrainingConfig(epochs=1),
        )
        baseline_searcher = DanceSearcher(
            small_space, trained_evaluator, small_cost_table, config=no_cost, rng=1
        )
        heavy_result = baseline_searcher.search(
            train_set, val_set, method_name="DANCE (no cost)", retrain_final=False
        )
        heavy_result_flops = small_space.architecture_flops(heavy_result.op_indices)
        assert light_result_flops <= heavy_result_flops

    def test_finalize_uses_oracle_hardware(self, small_space, small_cost_table, trained_evaluator, tiny_images):
        train_set, val_set = tiny_images
        searcher = DanceSearcher(small_space, trained_evaluator, small_cost_table, config=FAST_SEARCH, rng=3)
        params = ArchitectureParameters(small_space, rng=4)
        target = small_space.random_architecture(rng=5)
        params.set_architecture(target)
        result = searcher.finalize(
            params, train_set, val_set, method_name="manual", search_seconds=0.0, retrain_final=False
        )
        expected_config, expected_metrics = small_cost_table.optimal_config(
            target, cost_function=EDAPCostFunction().scalar
        )
        assert result.hardware == expected_config
        assert result.metrics.edap == pytest.approx(expected_metrics.edap)

    def test_linear_cost_function_supported(self, small_space, small_cost_table, trained_evaluator, tiny_images):
        train_set, val_set = tiny_images
        searcher = DanceSearcher(
            small_space,
            trained_evaluator,
            small_cost_table,
            cost_function=LinearCostFunction(4.1, 4.8, 1.0),
            config=FAST_SEARCH,
            rng=5,
        )
        result = searcher.search(train_set, val_set, retrain_final=False)
        assert result.metrics.latency_ms > 0


class TestBaselineSearch:
    def test_baseline_without_penalty(self, small_space, small_hw_space, small_cost_table, tiny_images):
        train_set, val_set = tiny_images
        config = BaselineConfig(
            search_epochs=2, batch_size=32, final_training=ClassifierTrainingConfig(epochs=1)
        )
        searcher = BaselineSearcher(small_space, small_cost_table, config=config, rng=0)
        result = searcher.search(train_set, val_set, retrain_final=False)
        assert "No penalty" in result.method
        assert small_hw_space.contains(result.hardware)

    def test_flops_penalty_shrinks_architecture(self, small_space, small_cost_table, tiny_images):
        train_set, val_set = tiny_images
        no_penalty = BaselineSearcher(
            small_space,
            small_cost_table,
            config=BaselineConfig(search_epochs=3, batch_size=32, flops_penalty=0.0),
            rng=1,
        ).search(train_set, val_set, retrain_final=False)
        with_penalty = BaselineSearcher(
            small_space,
            small_cost_table,
            config=BaselineConfig(search_epochs=3, batch_size=32, flops_penalty=50.0, arch_lr=0.05),
            rng=1,
        ).search(train_set, val_set, retrain_final=False)
        assert "Flops penalty" in with_penalty.method
        assert small_space.architecture_flops(with_penalty.op_indices) <= small_space.architecture_flops(
            no_penalty.op_indices
        )


class TestRLCoExploration:
    def test_rl_search_trains_many_candidates(self, small_space, small_hw_space, small_cost_table, tiny_images):
        train_set, val_set = tiny_images
        config = RLCoExplorationConfig(
            num_candidates=4,
            candidate_training=ClassifierTrainingConfig(epochs=1, batch_size=32),
            final_training=ClassifierTrainingConfig(epochs=1, batch_size=32),
        )
        searcher = RLCoExplorationSearcher(
            small_space, small_hw_space, small_cost_table, config=config, rng=0
        )
        result = searcher.search(train_set, val_set, retrain_final=False)
        assert result.candidates_trained == 4
        assert len(result.history) == 4
        assert small_hw_space.contains(result.hardware)

    def test_rl_controller_improves_reward_signal(self):
        from repro.core.rl_coexplore import _SoftmaxController

        rng = np.random.default_rng(0)
        controller = _SoftmaxController([3], lr=0.5, rng=rng)
        # Reward decision 0 only; its probability should rise.
        for _ in range(50):
            decision = controller.sample()
            reward = 1.0 if decision[0] == 0 else -1.0
            controller.update(decision, reward)
        probabilities = np.exp(controller.logits[0]) / np.exp(controller.logits[0]).sum()
        assert probabilities[0] > 0.8


class TestQuickstartPipeline:
    def test_quick_coexploration_runs(self):
        from repro import quick_coexploration

        result = quick_coexploration(seed=0, search_epochs=1, num_eval_samples=150)
        assert isinstance(result, SearchResult)
        assert result.metrics.edap > 0
