"""Tests for candidate operations, the NAS search space and FLOPs accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.nas import (
    CANDIDATE_OPS,
    ArchitectureParameters,
    FlopsModel,
    MBConvOp,
    NUM_CANDIDATE_OPS,
    SkipConnection,
    ZeroOp,
    build_cifar_search_space,
    build_imagenet_search_space,
    build_op_module,
    derive_architecture,
    op_flops,
    op_index,
    op_workload_layers,
)


class TestCandidateOps:
    def test_paper_operation_set(self):
        assert NUM_CANDIDATE_OPS == 7
        names = {op.name for op in CANDIDATE_OPS}
        assert "zero" in names
        assert {"mbconv3_e3", "mbconv3_e6", "mbconv5_e3", "mbconv5_e6", "mbconv7_e3", "mbconv7_e6"} <= names

    def test_op_index_lookup(self):
        assert CANDIDATE_OPS[op_index("zero")].is_zero
        with pytest.raises(KeyError):
            op_index("conv11")

    def test_zero_op_outputs_zeros_with_right_shape(self):
        zero = ZeroOp(4, 8, stride=2)
        out = zero(Tensor(np.ones((2, 4, 8, 8))))
        assert out.shape == (2, 8, 4, 4)
        assert np.allclose(out.data, 0.0)

    def test_mbconv_forward_shapes(self):
        op = MBConvOp(in_channels=4, out_channels=8, kernel_size=3, expansion=3, stride=2, rng=0)
        out = op(Tensor(np.random.default_rng(0).normal(size=(2, 4, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_mbconv_residual_only_when_shapes_match(self):
        same = MBConvOp(4, 4, 3, 3, stride=1)
        different = MBConvOp(4, 8, 3, 3, stride=1)
        strided = MBConvOp(4, 4, 3, 3, stride=2)
        assert same.use_residual
        assert not different.use_residual
        assert not strided.use_residual

    def test_skip_connection_identity_vs_projection(self):
        identity = SkipConnection(4, 4, stride=1)
        projection = SkipConnection(4, 8, stride=2, rng=0)
        assert identity.is_identity
        assert not projection.is_identity
        out = projection(Tensor(np.zeros((1, 4, 8, 8))))
        assert out.shape == (1, 8, 4, 4)

    def test_build_op_module_zero_and_mbconv(self):
        zero_module = build_op_module(CANDIDATE_OPS[op_index("zero")], 4, 4)
        conv_module = build_op_module(CANDIDATE_OPS[op_index("mbconv5_e6")], 4, 4, rng=0)
        assert isinstance(zero_module, ZeroOp)
        assert isinstance(conv_module, MBConvOp)

    def test_zero_op_contributes_no_workload(self):
        layers = op_workload_layers(CANDIDATE_OPS[op_index("zero")], "z", 16, 16, 8)
        assert layers == []

    def test_larger_kernel_and_expansion_cost_more_flops(self):
        small = op_flops(CANDIDATE_OPS[op_index("mbconv3_e3")], 16, 16, 16)
        big = op_flops(CANDIDATE_OPS[op_index("mbconv7_e6")], 16, 16, 16)
        assert big > small
        assert op_flops(CANDIDATE_OPS[op_index("zero")], 16, 16, 16) == 0


class TestSearchSpace:
    def test_cifar_space_matches_paper_shape(self, nas_space):
        assert nas_space.num_searchable == 9
        assert nas_space.num_ops == 7
        assert nas_space.encoding_width == 63
        assert nas_space.total_layers == 13

    def test_channels_increase_every_three_layers(self, nas_space):
        channels = [cfg.nominal_out_channels for cfg in nas_space.searchable_layers]
        assert channels[0] == channels[1] == channels[2]
        assert channels[3] > channels[2]
        assert channels[6] > channels[5]

    def test_stage_boundaries_downsample(self, nas_space):
        strides = [cfg.stride for cfg in nas_space.searchable_layers]
        assert strides[3] == 2 and strides[6] == 2
        assert strides[0] == 1

    def test_encode_decode_roundtrip(self, nas_space):
        rng = np.random.default_rng(0)
        for _ in range(10):
            arch = nas_space.random_architecture(rng=rng)
            encoding = nas_space.encode_indices(arch)
            assert encoding.shape == (63,)
            assert np.allclose(encoding.sum(), 9.0)
            assert np.array_equal(nas_space.decode_encoding(encoding), arch)

    def test_validate_indices_rejects_bad_input(self, nas_space):
        with pytest.raises(ValueError):
            nas_space.validate_indices([0, 1])
        with pytest.raises(ValueError):
            nas_space.validate_indices([99] * 9)

    def test_encode_probabilities_validates_shape_and_sign(self, nas_space):
        good = np.full((9, 7), 1.0 / 7.0)
        assert nas_space.encode_probabilities(good).shape == (63,)
        with pytest.raises(ValueError):
            nas_space.encode_probabilities(np.zeros((3, 7)))
        with pytest.raises(ValueError):
            nas_space.encode_probabilities(good - 1.0)

    def test_workload_respects_zero_ops(self, nas_space):
        all_zero = np.full(9, op_index("zero"))
        all_heavy = np.full(9, op_index("mbconv7_e6"))
        zero_workload = nas_space.build_workload(all_zero)
        heavy_workload = nas_space.build_workload(all_heavy)
        # Only stem and head remain when everything is Zero.
        assert len(zero_workload) == 2
        assert heavy_workload.total_macs > zero_workload.total_macs

    def test_architecture_flops_monotone_in_op_weight(self, nas_space):
        light = np.full(9, op_index("mbconv3_e3"))
        heavy = np.full(9, op_index("mbconv7_e6"))
        assert nas_space.architecture_flops(heavy) > nas_space.architecture_flops(light)

    def test_imagenet_space_costs_more_than_cifar(self, nas_space):
        imagenet = build_imagenet_search_space()
        arch = np.full(9, op_index("mbconv5_e6"))
        assert imagenet.architecture_flops(arch) > nas_space.architecture_flops(arch)

    def test_random_architecture_allow_zero_flag(self, nas_space):
        rng = np.random.default_rng(0)
        archs = [nas_space.random_architecture(rng=rng, allow_zero=False) for _ in range(20)]
        assert all(op_index("zero") not in arch for arch in archs)

    def test_num_searchable_must_be_multiple_of_three(self):
        with pytest.raises(ValueError):
            build_cifar_search_space(num_searchable=7)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 6), min_size=9, max_size=9))
    def test_property_workload_macs_match_sum_of_ops(self, arch):
        space = build_cifar_search_space()
        workload = space.build_workload(arch)
        expected = sum(layer.macs for layer in space.fixed_workload_layers())
        for position, op_idx in enumerate(arch):
            expected += sum(layer.macs for layer in space.op_layers(position, op_idx))
        assert workload.total_macs == expected


class TestFlopsModel:
    def test_expected_flops_of_one_hot_matches_discrete(self, nas_space):
        model = FlopsModel(nas_space)
        arch = nas_space.random_architecture(rng=0)
        one_hot = nas_space.encode_indices(arch).reshape(9, 7)
        expected = model.expected_flops(Tensor(one_hot)).item()
        assert expected == pytest.approx(model.architecture_flops(arch))

    def test_expected_flops_differentiable(self, nas_space):
        model = FlopsModel(nas_space)
        probabilities = Tensor(np.full((9, 7), 1.0 / 7.0), requires_grad=True)
        model.normalized_expected_flops(probabilities).backward()
        assert probabilities.grad is not None
        assert np.all(probabilities.grad >= 0)

    def test_normalized_flops_at_most_one(self, nas_space):
        model = FlopsModel(nas_space)
        heaviest = np.full(9, op_index("mbconv7_e6"))
        one_hot = nas_space.encode_indices(heaviest).reshape(9, 7)
        assert model.normalized_expected_flops(Tensor(one_hot)).item() == pytest.approx(1.0)

    def test_shape_validation(self, nas_space):
        model = FlopsModel(nas_space)
        with pytest.raises(ValueError):
            model.expected_flops(Tensor(np.zeros((3, 7))))


class TestArchitectureParameters:
    def test_probabilities_are_distributions(self, nas_space):
        params = ArchitectureParameters(nas_space, rng=0)
        probabilities = params.probabilities()
        assert probabilities.shape == (9, 7)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_encoding_tensor_is_differentiable(self, nas_space):
        params = ArchitectureParameters(nas_space, rng=0)
        encoding = params.encoding_tensor()
        assert encoding.shape == (1, 63)
        encoding.sum().backward()
        assert params.alpha.grad is not None

    def test_gumbel_sample_one_hot_rows(self, nas_space):
        params = ArchitectureParameters(nas_space, rng=0)
        gates = params.sample_gumbel(temperature=0.5, hard=True, rng=1)
        assert gates.shape == (9, 7)
        assert np.allclose(gates.data.sum(axis=1), 1.0)

    def test_set_architecture_forces_derivation(self, nas_space):
        params = ArchitectureParameters(nas_space, rng=0)
        target = nas_space.random_architecture(rng=2)
        params.set_architecture(target)
        assert np.array_equal(params.derive(), target)

    def test_entropy_decreases_when_confident(self, nas_space):
        params = ArchitectureParameters(nas_space, rng=0)
        initial_entropy = params.entropy()
        params.set_architecture(nas_space.random_architecture(rng=1), confidence=10.0)
        assert params.entropy() < initial_entropy

    def test_sample_indices_respects_distribution(self, nas_space):
        params = ArchitectureParameters(nas_space, rng=0)
        params.set_architecture(np.zeros(9, dtype=np.int64), confidence=12.0)
        samples = params.sample_indices(rng=3)
        assert np.array_equal(samples, np.zeros(9))


class TestDerivation:
    def test_derive_from_parameters_and_indices_agree(self, nas_space):
        params = ArchitectureParameters(nas_space, rng=0)
        target = nas_space.random_architecture(rng=1)
        params.set_architecture(target)
        from_params = derive_architecture(nas_space, params)
        from_indices = derive_architecture(nas_space, target)
        assert np.array_equal(from_params.op_indices, from_indices.op_indices)
        assert from_params.flops == from_indices.flops

    def test_derived_architecture_reports_active_layers(self, nas_space):
        arch = np.full(9, op_index("zero"))
        arch[0] = op_index("mbconv3_e3")
        derived = derive_architecture(nas_space, arch)
        assert derived.num_active_layers == 1
        assert "mbconv3_e3" in str(derived)
