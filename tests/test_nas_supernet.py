"""Tests for the supernet, mixed operations and derived networks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, cross_entropy
from repro.nas import ArchitectureParameters, DerivedNetwork, SuperNet, build_cifar_search_space, op_index


@pytest.fixture(scope="module")
def tiny_space():
    """A 3-position space so supernet tests stay fast."""
    return build_cifar_search_space(num_searchable=3, trainable_resolution=8, trainable_base_channels=4)


@pytest.fixture(scope="module")
def supernet(tiny_space):
    return SuperNet(tiny_space, rng=0)


def _one_hot_gates(space, indices):
    gates = np.zeros((space.num_searchable, space.num_ops))
    gates[np.arange(space.num_searchable), indices] = 1.0
    return Tensor(gates)


class TestSuperNet:
    def test_forward_output_shape(self, tiny_space, supernet):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 8, 8)))
        gates = _one_hot_gates(tiny_space, [0, 1, 2])
        logits = supernet(x, gates)
        assert logits.shape == (2, tiny_space.num_classes)

    def test_forward_rejects_wrong_gate_shape(self, supernet):
        x = Tensor(np.zeros((1, 3, 8, 8)))
        with pytest.raises(ValueError):
            supernet(x, Tensor(np.zeros((2, 2))))

    def test_gradient_reaches_arch_parameters_through_gates(self, tiny_space, supernet):
        params = ArchitectureParameters(tiny_space, rng=1)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 3, 8, 8)))
        labels = np.array([0, 1])
        gates = params.sample_gumbel(temperature=1.0, hard=True, rng=2)
        loss = cross_entropy(supernet(x, gates), labels)
        loss.backward()
        assert params.alpha.grad is not None
        assert np.any(params.alpha.grad != 0.0)

    def test_gradient_reaches_supernet_weights(self, tiny_space, supernet):
        supernet.zero_grad()
        x = Tensor(np.random.default_rng(2).normal(size=(2, 3, 8, 8)))
        gates = _one_hot_gates(tiny_space, [1, 1, 1])
        loss = cross_entropy(supernet(x, gates), np.array([0, 1]))
        loss.backward()
        stem_weight = supernet.stem[0].weight
        assert stem_weight.grad is not None and np.any(stem_weight.grad != 0.0)

    def test_all_zero_gates_still_produce_valid_output(self, tiny_space, supernet):
        zero_index = op_index("zero")
        x = Tensor(np.random.default_rng(3).normal(size=(2, 3, 8, 8)))
        logits = supernet(x, _one_hot_gates(tiny_space, [zero_index] * 3))
        assert logits.shape == (2, tiny_space.num_classes)
        assert np.all(np.isfinite(logits.data))

    def test_forward_discrete_matches_manual_gates(self, tiny_space, supernet):
        supernet.eval()
        x = Tensor(np.random.default_rng(4).normal(size=(1, 3, 8, 8)))
        indices = [2, 0, 1]
        manual = supernet(x, _one_hot_gates(tiny_space, indices))
        direct = supernet.forward_discrete(x, indices)
        supernet.train()
        assert np.allclose(manual.data, direct.data)

    def test_different_gates_give_different_outputs(self, tiny_space, supernet):
        supernet.eval()
        x = Tensor(np.random.default_rng(5).normal(size=(1, 3, 8, 8)))
        out_a = supernet(x, _one_hot_gates(tiny_space, [0, 0, 0])).data
        out_b = supernet(x, _one_hot_gates(tiny_space, [5, 5, 5])).data
        supernet.train()
        assert not np.allclose(out_a, out_b)


class TestDerivedNetwork:
    def test_forward_shape(self, tiny_space):
        network = DerivedNetwork(tiny_space, [0, 3, 6], rng=0)
        out = network(Tensor(np.random.default_rng(0).normal(size=(4, 3, 8, 8))))
        assert out.shape == (4, tiny_space.num_classes)

    def test_zero_layers_reduce_parameter_count(self, tiny_space):
        zero_index = op_index("zero")
        all_zero = DerivedNetwork(tiny_space, [zero_index] * 3, rng=0)
        all_conv = DerivedNetwork(tiny_space, [op_index("mbconv7_e6")] * 3, rng=0)
        assert all_zero.num_parameters() < all_conv.num_parameters()

    def test_invalid_indices_rejected(self, tiny_space):
        with pytest.raises(ValueError):
            DerivedNetwork(tiny_space, [0, 1], rng=0)

    def test_training_improves_over_initial_accuracy(self, tiny_space):
        from repro.core import ClassifierTrainingConfig, evaluate_classifier, train_classifier
        from repro.data import make_cifar_like, train_val_split

        dataset = make_cifar_like(num_samples=120, resolution=8, rng=0)
        train_set, val_set = train_val_split(dataset, val_fraction=0.3, rng=1)
        network = DerivedNetwork(tiny_space, [1, 1, 1], rng=2)
        initial = evaluate_classifier(network, val_set)
        final = train_classifier(
            network, train_set, val_set, ClassifierTrainingConfig(epochs=3, batch_size=16), rng=3
        )
        assert final >= initial
