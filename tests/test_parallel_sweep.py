"""Tests for the parallel sharded sweep subsystem (`repro.experiments.sweep`):
plan expansion/sharding, the crash-safe file-lock work queue, bit-identity of
parallel vs serial execution, and partial-sweep reporting."""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments import (
    ExperimentConfig,
    Runner,
    SweepPlan,
    WorkQueue,
    parse_shard,
    run_sweep,
)
from repro.experiments.runner import CHECKPOINT_FILE, RESULT_FILE
from repro.experiments.sweep import (
    FAILED_FILE,
    LOCK_FILE,
    format_sweep_status,
    item_state,
    sweep_status,
)

#: Small enough for a sub-second run; retrain_final=False keeps it cheap.
TINY_SWEEP = dict(
    num_searchable=3,
    trainable_base_channels=4,
    image_samples=64,
    search_epochs=1,
    final_epochs=1,
    retrain_final=False,
)

GRID = dict(methods=["baseline", "baseline_flops"], seeds=[0, 1])


def tiny_config(**overrides) -> ExperimentConfig:
    return ExperimentConfig(**{"method": "baseline", "seed": 0, **TINY_SWEEP, **overrides})


def age_file(path: Path, seconds: float) -> None:
    """Backdate a file's mtime, as if its owner stopped heartbeating."""
    past = time.time() - seconds
    os.utime(path, (past, past))


def normalized_result_bytes(path: Path) -> bytes:
    """result.json bytes with the wall-clock field (the only nondeterministic
    one) normalised away, for byte-level comparisons across executions."""
    data = json.loads(path.read_text(encoding="utf-8"))
    data["search_seconds"] = 0.0
    return json.dumps(data, sort_keys=True).encode("utf-8")


# ----------------------------------------------------------------------
# Plan expansion and sharding
# ----------------------------------------------------------------------
class TestSweepPlan:
    def test_grid_expansion_is_method_major(self):
        plan = SweepPlan.from_grid(tiny_config(), **GRID)
        assert [item.name for item in plan] == [
            "baseline-cifar-seed0",
            "baseline-cifar-seed1",
            "baseline_flops-cifar-seed0",
            "baseline_flops-cifar-seed1",
        ]

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            SweepPlan.from_grid(tiny_config(), methods=["evolution"])

    def test_duplicate_runs_rejected(self):
        with pytest.raises(ValueError, match="same directory"):
            SweepPlan.from_grid(tiny_config(), methods=["baseline", "baseline"], seeds=[0])

    def test_shards_partition_the_grid(self):
        plan = SweepPlan.from_grid(tiny_config(), **GRID)
        shards = [plan.shard(index, 3) for index in (1, 2, 3)]
        names = [item.name for shard in shards for item in shard]
        assert sorted(names) == sorted(item.name for item in plan)
        assert len(set(names)) == len(plan)

    def test_shard_validation(self):
        plan = SweepPlan.from_grid(tiny_config(), **GRID)
        with pytest.raises(ValueError):
            plan.shard(0, 2)
        with pytest.raises(ValueError):
            plan.shard(3, 2)

    def test_parse_shard(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard(" 2/3 ") == (2, 3)
        for bad in ("0/3", "4/3", "1-3", "x/y", "1/0"):
            with pytest.raises(ValueError):
                parse_shard(bad)


# ----------------------------------------------------------------------
# Work queue: claiming, heartbeats, crash recovery
# ----------------------------------------------------------------------
class TestWorkQueue:
    def test_each_item_claimed_exactly_once(self, tmp_path):
        queue = WorkQueue(tmp_path, ["a", "b"], lock_ttl=60)
        other = WorkQueue(tmp_path, ["a", "b"], lock_ttl=60)
        assert queue.claim() == "a"
        assert other.claim() == "b"  # "a" is locked by `queue`
        assert other.claim() is None
        assert queue.claim(skip=["a"]) is None

    def test_finished_items_are_not_claimable(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "a" / RESULT_FILE).write_text("{}")
        assert WorkQueue(tmp_path, ["a"], lock_ttl=60).claim() is None

    def test_killed_workers_claim_expires_and_is_reclaimable(self, tmp_path):
        """The crash-safety core: a dead worker's item frees after lock_ttl."""
        dead = WorkQueue(tmp_path, ["a"], lock_ttl=60)
        assert dead.try_claim("a")
        survivor = WorkQueue(tmp_path, ["a"], lock_ttl=60)
        assert not survivor.try_claim("a")  # fresh lock: still owned
        age_file(dead.lock_path("a"), 120)  # the worker "died" (no heartbeat)
        assert survivor.try_claim("a")
        assert item_state(tmp_path / "a", lock_ttl=60) == "running"

    def test_heartbeat_keeps_the_claim_alive(self, tmp_path):
        queue = WorkQueue(tmp_path, ["a"], lock_ttl=60)
        assert queue.try_claim("a")
        age_file(queue.lock_path("a"), 120)
        queue.heartbeat("a")  # a live worker refreshes its lock every step
        assert not WorkQueue(tmp_path, ["a"], lock_ttl=60).try_claim("a")

    def test_stalled_worker_cannot_release_anothers_lock(self, tmp_path):
        """After a takeover, the original (stalled) worker's release is a no-op."""
        stalled = WorkQueue(tmp_path, ["a"], lock_ttl=60)
        assert stalled.try_claim("a")
        age_file(stalled.lock_path("a"), 120)
        takeover = WorkQueue(tmp_path, ["a"], lock_ttl=60)
        assert takeover.try_claim("a")
        stalled.release("a")  # token no longer matches: must not unlink
        assert stalled.lock_path("a").exists()
        takeover.complete("a")
        assert not takeover.lock_path("a").exists()

    def test_release_makes_item_claimable_again(self, tmp_path):
        queue = WorkQueue(tmp_path, ["a"], lock_ttl=60)
        assert queue.try_claim("a")
        queue.release("a")
        assert WorkQueue(tmp_path, ["a"], lock_ttl=60).try_claim("a")


# ----------------------------------------------------------------------
# Parallel execution: the ISSUE acceptance criterion
# ----------------------------------------------------------------------
class TestParallelSweep:
    def _sweep_args(self, runs_dir: str, extra=()):
        sets = [f"--set={key}={value}" for key, value in TINY_SWEEP.items()]
        return [
            "--runs-dir",
            runs_dir,
            "sweep",
            "--methods",
            *GRID["methods"],
            "--seeds",
            *map(str, GRID["seeds"]),
            *extra,
            *sets,
        ]

    def test_jobs2_bit_identical_to_serial(self, tmp_path):
        """`python -m repro sweep --jobs 2` on a 4-run grid produces result.json
        files byte-identical (modulo the wall-clock field) to `--jobs 1`."""
        from repro.__main__ import main

        serial, parallel = tmp_path / "serial", tmp_path / "parallel"
        assert main(self._sweep_args(str(serial))) == 0
        assert main(self._sweep_args(str(parallel), extra=["--jobs", "2"])) == 0
        names = [f"{m}-cifar-seed{s}" for m in GRID["methods"] for s in GRID["seeds"]]
        for name in names:
            assert normalized_result_bytes(serial / name / RESULT_FILE) == normalized_result_bytes(
                parallel / name / RESULT_FILE
            ), f"{name} differs between --jobs 1 and --jobs 2"
        assert (parallel / "REPORT.txt").exists()
        # No claim survives a finished sweep.
        assert not list(parallel.rglob(LOCK_FILE))

    def test_shards_compose_into_the_full_grid(self, tmp_path):
        from repro.__main__ import main

        runs = tmp_path / "sharded"
        assert main(self._sweep_args(str(runs), extra=["--shard", "1/2"])) == 0
        assert len(list(runs.glob(f"*/{RESULT_FILE}"))) == 2
        assert main(self._sweep_args(str(runs), extra=["--shard", "2/2"])) == 0
        assert len(list(runs.glob(f"*/{RESULT_FILE}"))) == 4

    def test_crashed_run_is_resumed_from_its_checkpoint(self, tmp_path):
        """A claimed-then-killed item (stale lock + checkpoint) is re-claimed by
        the next sweep and finishes bit-identical to an uninterrupted run."""
        config = tiny_config(search_epochs=3)
        reference = tmp_path / "reference"
        uninterrupted = Runner(base_dir=reference).run(config)

        crashed = tmp_path / "crashed"
        runner = Runner(base_dir=crashed)
        assert runner.run(config, max_steps=1) is None  # killed mid-run
        workdir = runner.workdir_for(config)
        assert (workdir / CHECKPOINT_FILE).exists()
        (workdir / LOCK_FILE).write_text('{"token": "dead-worker"}')
        age_file(workdir / LOCK_FILE, 120)

        plan = SweepPlan.from_grid(config)
        outcome = run_sweep(plan, base_dir=crashed, jobs=1, lock_ttl=60)
        assert outcome.complete
        assert normalized_result_bytes(workdir / RESULT_FILE) == normalized_result_bytes(
            reference / config.name / RESULT_FILE
        )
        assert uninterrupted is not None

    def test_sweep_waits_out_a_dead_workers_fresh_lock(self, tmp_path):
        """A lock that is still fresh when the sweep starts (worker just died)
        is waited out: the sweep takes the item over once the ttl expires,
        instead of returning it as unfinished."""
        config = tiny_config()
        workdir = tmp_path / config.name
        workdir.mkdir(parents=True)
        (workdir / LOCK_FILE).write_text('{"token": "dead-worker"}')  # fresh mtime
        outcome = run_sweep(SweepPlan.from_grid(config), base_dir=tmp_path, jobs=1, lock_ttl=2)
        assert outcome.complete
        assert (workdir / RESULT_FILE).exists()

    def test_failed_run_is_recorded_and_does_not_stall_the_queue(self, tmp_path, monkeypatch):
        config = tiny_config()
        plan = SweepPlan.from_grid(config, methods=["baseline", "baseline_flops"])
        original = Runner.run

        def failing_run(self, cfg, *args, **kwargs):
            if cfg.method == "baseline":
                raise RuntimeError("boom")
            return original(self, cfg, *args, **kwargs)

        monkeypatch.setattr(Runner, "run", failing_run)
        outcome = run_sweep(plan, base_dir=tmp_path, jobs=1, lock_ttl=60)
        assert outcome.unfinished == ["baseline-cifar-seed0"]
        assert len(outcome.results) == 1
        failure = tmp_path / "baseline-cifar-seed0" / FAILED_FILE
        assert "boom" in failure.read_text()
        # The failed item's lock was released: a later launch can retry it.
        monkeypatch.setattr(Runner, "run", original)
        retry = run_sweep(plan, base_dir=tmp_path, jobs=1, lock_ttl=60)
        assert retry.complete
        assert not failure.exists()

    def test_runner_sweep_raises_on_unfinished(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            Runner, "run", lambda self, cfg, *a, **k: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        with pytest.raises(RuntimeError, match="unfinished"):
            Runner(base_dir=tmp_path).sweep(tiny_config())


# ----------------------------------------------------------------------
# Partial-sweep status reporting
# ----------------------------------------------------------------------
class TestSweepStatus:
    def test_states_and_report_aggregation(self, tmp_path):
        runner = Runner(base_dir=tmp_path)
        finished = tiny_config(seed=0)
        runner.run(finished)
        paused = tiny_config(seed=1, search_epochs=3)
        assert runner.run(paused, max_steps=1) is None

        status = sweep_status(tmp_path, lock_ttl=60)
        assert status[finished.name]["state"] == "finished"
        assert status[paused.name]["state"] == "checkpointed"
        assert status[paused.name]["step"] == 1

        rendered = format_sweep_status(status)
        assert "1/2 runs finished" in rendered
        assert paused.name in rendered

        report = runner.report()
        assert "checkpointed" in report
        # Once everything finishes, the report drops the status section.
        runner.resume(workdir=runner.workdir_for(paused))
        assert "checkpointed" not in runner.report()

    def test_running_and_stale_states(self, tmp_path):
        config = tiny_config(search_epochs=3)
        runner = Runner(base_dir=tmp_path)
        assert runner.run(config, max_steps=1) is None
        workdir = runner.workdir_for(config)
        queue = WorkQueue(tmp_path, [config.name], lock_ttl=60)
        assert queue.try_claim(config.name)
        assert sweep_status(tmp_path, lock_ttl=60)[config.name]["state"] == "running"
        age_file(queue.lock_path(config.name), 120)
        assert sweep_status(tmp_path, lock_ttl=60)[config.name]["state"] == "stale"
        assert item_state(workdir, lock_ttl=60) == "stale"
