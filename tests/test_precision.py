"""Tests for the autograd precision policy and its experiment plumbing.

Covers the policy primitives (``default_dtype``/``set_default_dtype``/
``use_dtype``), dtype propagation through tensors, modules, buffers and
optimiser slots, the ``ExperimentConfig.train_dtype`` threading (validation,
CLI override, factory construction), and the satellites that ride along:
the ``_pair`` integer coercion and the cached BatchNorm2d eval statistics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import (
    Adam,
    BatchNorm2d,
    Conv2d,
    Linear,
    SGD,
    Tensor,
    default_dtype,
    resolve_dtype,
    set_default_dtype,
    use_dtype,
)
from repro.autograd.conv import _pair
from repro.autograd.functional import cross_entropy
from repro.experiments.config import ExperimentConfig


@pytest.fixture(autouse=True)
def _restore_default_dtype():
    """No test may leak a non-default policy into the rest of the suite."""
    yield
    set_default_dtype(np.float64)


# Mirrors TINY_RUN in test_experiments.py: the smallest configuration that
# exercises every pipeline stage without taking minutes.
TINY_RUN = dict(
    num_searchable=3,
    trainable_base_channels=4,
    image_samples=96,
    evaluator_samples=150,
    evaluator_hw_epochs=4,
    evaluator_cost_epochs=6,
    search_epochs=3,
    final_epochs=1,
)


class TestPolicyPrimitives:
    def test_default_is_float64(self):
        assert default_dtype() == np.dtype(np.float64)

    def test_resolve_accepts_names_and_dtypes(self):
        assert resolve_dtype("float32") == np.dtype(np.float32)
        assert resolve_dtype("FLOAT64") == np.dtype(np.float64)
        assert resolve_dtype(np.float32) == np.dtype(np.float32)

    @pytest.mark.parametrize("bad", ["float16", "int32", "double64", object])
    def test_resolve_rejects_unsupported(self, bad):
        with pytest.raises((ValueError, TypeError)):
            resolve_dtype(bad)

    def test_set_returns_previous(self):
        previous = set_default_dtype("float32")
        assert previous == np.dtype(np.float64)
        assert default_dtype() == np.dtype(np.float32)

    def test_use_dtype_scopes_and_restores_on_error(self):
        with use_dtype("float32"):
            assert default_dtype() == np.dtype(np.float32)
        assert default_dtype() == np.dtype(np.float64)
        with pytest.raises(RuntimeError):
            with use_dtype("float32"):
                raise RuntimeError("boom")
        assert default_dtype() == np.dtype(np.float64)


class TestDtypePropagation:
    def test_tensor_storage_follows_policy(self):
        with use_dtype("float32"):
            assert Tensor([1.0, 2.0]).data.dtype == np.float32
        assert Tensor([1.0, 2.0]).data.dtype == np.float64

    def test_gradients_follow_tensor_dtype(self):
        with use_dtype("float32"):
            x = Tensor(np.ones((3, 4)), requires_grad=True)
            layer = Linear(4, 2, rng=0)
            loss = (layer(x) * layer(x)).mean()
            loss.backward()
            assert x.grad.dtype == np.float32
            assert layer.weight.grad.dtype == np.float32
            assert loss.data.dtype == np.float32

    def test_conv_and_batchnorm_run_in_float32(self):
        with use_dtype("float32"):
            conv = Conv2d(3, 8, 3, padding=1, rng=0)
            norm = BatchNorm2d(8)
            x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 8, 8)), requires_grad=True)
            out = norm(conv(x))
            assert out.data.dtype == np.float32
            assert norm._buffers["running_mean"].dtype == np.float32
            out.sum().backward()
            assert x.grad.dtype == np.float32

    def test_cross_entropy_float32(self):
        with use_dtype("float32"):
            logits = Tensor(np.random.default_rng(1).normal(size=(4, 3)), requires_grad=True)
            loss = cross_entropy(logits, np.array([0, 1, 2, 0]))
            loss.backward()
            assert loss.data.dtype == np.float32
            assert logits.grad.dtype == np.float32

    def test_optimizer_slots_follow_parameter_dtype(self):
        with use_dtype("float32"):
            layer = Linear(4, 2, rng=0)
            sgd = SGD(layer.parameters(), lr=0.1, momentum=0.9)
            adam = Adam(layer.parameters(), lr=0.01)
            for _ in range(2):
                layer.zero_grad()
                loss = (layer(Tensor(np.ones((3, 4)))) ** 2).mean()
                loss.backward()
                sgd.step()
                adam.step()
            assert all(buf.dtype == np.float32 for buf in sgd._velocity.values())
            assert all(buf.dtype == np.float32 for buf in adam._m.values())
            assert layer.weight.data.dtype == np.float32

    def test_optimizer_state_roundtrip_preserves_dtype(self):
        with use_dtype("float32"):
            layer = Linear(4, 2, rng=0)
            sgd = SGD(layer.parameters(), lr=0.1, momentum=0.9)
            layer.zero_grad()
            (layer(Tensor(np.ones((3, 4)))) ** 2).mean().backward()
            sgd.step()
            restored = SGD(layer.parameters(), lr=0.1, momentum=0.9)
            restored.load_state_dict(sgd.state_dict())
            assert all(buf.dtype == np.float32 for buf in restored._velocity.values())

    def test_module_state_dict_roundtrip_in_float32(self):
        with use_dtype("float32"):
            source = Conv2d(3, 4, 3, rng=0)
            target = Conv2d(3, 4, 3, rng=1)
            target.load_state_dict(source.state_dict())
            assert target.weight.data.dtype == np.float32
            assert np.array_equal(target.weight.data, source.weight.data)

    def test_float64_default_unchanged(self):
        """The default regime must produce exactly the historical float64."""
        layer = Linear(4, 2, rng=0)
        loss = (layer(Tensor(np.ones((3, 4)))) ** 2).mean()
        loss.backward()
        assert loss.data.dtype == np.float64
        assert layer.weight.grad.dtype == np.float64


class TestFloat32FastKernels:
    """The fused float32 kernels must match the float64 graph to tolerance.

    Each test runs the float32 fast path, then replays the *same* float32
    parameter values through the float64 graph expressions (the bit-fenced
    default path) and compares outputs, input/parameter gradients and — for
    the batch norms — the running-statistic buffers.
    """

    RTOL, ATOL = 1e-4, 1e-5

    def test_linear_fused_matches_float64_reference(self):
        rng = np.random.default_rng(10)
        x_data = rng.normal(size=(5, 4))
        with use_dtype("float32"):
            layer = Linear(4, 3, rng=0)
            x = Tensor(x_data, requires_grad=True)
            out = layer(x)
            (out * out).mean().backward()
            assert out.data.dtype == np.float32
            fast = (out.data, x.grad, layer.weight.grad, layer.bias.grad)
            w64 = layer.weight.data.astype(np.float64)
            b64 = layer.bias.data.astype(np.float64)

        ref_layer = Linear(4, 3, rng=0)
        ref_layer.weight.data[...] = w64
        ref_layer.bias.data[...] = b64
        ref_x = Tensor(x_data, requires_grad=True)
        ref_out = ref_layer(ref_x)
        (ref_out * ref_out).mean().backward()
        reference = (ref_out.data, ref_x.grad, ref_layer.weight.grad, ref_layer.bias.grad)
        for fast_arr, ref_arr in zip(fast, reference):
            np.testing.assert_allclose(fast_arr, ref_arr, rtol=self.RTOL, atol=self.ATOL)

    def test_linear_higher_rank_input_still_correct_in_float32(self):
        # The fused kernel only claims 2-D inputs; rank-3 must fall back and
        # still produce the right matmul semantics.
        rng = np.random.default_rng(11)
        x_data = rng.normal(size=(2, 5, 4))
        with use_dtype("float32"):
            layer = Linear(4, 3, rng=0)
            out = layer(Tensor(x_data))
            expected = x_data.astype(np.float32) @ layer.weight.data.T + layer.bias.data
            np.testing.assert_allclose(out.data, expected, rtol=self.RTOL, atol=self.ATOL)

    def _batchnorm_pair(self, builder, x_shape):
        """(fast float32 results, float64 reference results) for a BN layer."""
        rng = np.random.default_rng(12)
        x_data = rng.normal(size=x_shape)
        with use_dtype("float32"):
            norm = builder()
            norm.train()
            x = Tensor(x_data, requires_grad=True)
            out = norm(x)
            (out * out).mean().backward()
            fast = (
                out.data,
                x.grad,
                norm.weight.grad,
                norm.bias.grad,
                norm._buffers["running_mean"],
                norm._buffers["running_var"],
            )
        assert all(arr.dtype == np.float32 for arr in fast)

        ref = builder()
        ref.train()
        ref_x = Tensor(x_data, requires_grad=True)
        ref_out = ref(ref_x)
        (ref_out * ref_out).mean().backward()
        reference = (
            ref_out.data,
            ref_x.grad,
            ref.weight.grad,
            ref.bias.grad,
            ref._buffers["running_mean"],
            ref._buffers["running_var"],
        )
        return fast, reference

    def test_batchnorm2d_fused_training_matches_float64_reference(self):
        fast, reference = self._batchnorm_pair(lambda: BatchNorm2d(6), (4, 6, 5, 5))
        for fast_arr, ref_arr in zip(fast, reference):
            np.testing.assert_allclose(fast_arr, ref_arr, rtol=self.RTOL, atol=self.ATOL)

    def test_batchnorm1d_fused_training_matches_float64_reference(self):
        from repro.autograd import BatchNorm1d

        fast, reference = self._batchnorm_pair(lambda: BatchNorm1d(6), (16, 6))
        for fast_arr, ref_arr in zip(fast, reference):
            np.testing.assert_allclose(fast_arr, ref_arr, rtol=self.RTOL, atol=self.ATOL)

    @pytest.mark.parametrize("smoothing", [0.0, 0.1])
    def test_cross_entropy_fused_matches_float64_reference(self, smoothing):
        rng = np.random.default_rng(13)
        logits_data = rng.normal(size=(6, 4))
        targets = np.array([0, 1, 2, 3, 1, 2])
        with use_dtype("float32"):
            logits = Tensor(logits_data, requires_grad=True)
            loss = cross_entropy(logits, targets, label_smoothing=smoothing)
            loss.backward()
            assert loss.data.dtype == np.float32
            assert logits.grad.dtype == np.float32
            fast = (loss.data, logits.grad)

        ref_logits = Tensor(logits_data, requires_grad=True)
        ref_loss = cross_entropy(ref_logits, targets, label_smoothing=smoothing)
        ref_loss.backward()
        np.testing.assert_allclose(fast[0], ref_loss.data, rtol=self.RTOL, atol=self.ATOL)
        np.testing.assert_allclose(fast[1], ref_logits.grad, rtol=self.RTOL, atol=self.ATOL)

    def test_float64_batchnorm_training_unchanged_by_fused_kernel(self):
        """Float64 training must not take the fused node (golden bit-identity)."""
        norm = BatchNorm2d(4)
        norm.train()
        x = Tensor(np.random.default_rng(14).normal(size=(3, 4, 5, 5)), requires_grad=True)
        out = norm(x)
        assert out.data.dtype == np.float64
        mean = x.data.mean(axis=(0, 2, 3), keepdims=True)
        var = ((x.data - mean) ** 2).mean(axis=(0, 2, 3), keepdims=True)
        expected = (x.data - mean) / np.sqrt(var + norm.eps)
        np.testing.assert_allclose(out.data, expected, rtol=1e-12)


class TestConfigPlumbing:
    def test_default_train_dtype(self):
        assert ExperimentConfig().train_dtype == "float64"

    def test_invalid_train_dtype_rejected_at_validation(self):
        with pytest.raises(ValueError, match="unsupported dtype"):
            ExperimentConfig(train_dtype="float16")

    def test_cli_override(self):
        config = ExperimentConfig().apply_override("train_dtype", "float32")
        assert config.train_dtype == "float32"

    def test_roundtrips_through_dict(self):
        config = ExperimentConfig(train_dtype="float32")
        assert ExperimentConfig.from_dict(config.to_dict()).train_dtype == "float32"

    def test_factory_builds_float32_components(self):
        from repro.experiments.factory import build_components

        config = ExperimentConfig(
            method="dance",
            seed=0,
            train_dtype="float32",
            **TINY_RUN,
        )
        # train_evaluator_net=False: construction (not training) is enough to
        # observe the policy, and it keeps this test fast.
        components = build_components(config, train_evaluator_net=False)
        evaluator = components.evaluator
        assert evaluator is not None
        assert all(p.data.dtype == np.float32 for p in evaluator.parameters())
        # The policy is scoped: after construction the process default is back.
        assert default_dtype() == np.dtype(np.float64)
        # The cost table is plain numpy and stays float64 regardless.
        assert components.cost_table.op_latency.dtype == np.float64


class TestPairCoercion:
    def test_scalar_and_tuple(self):
        assert _pair(3) == (3, 3)
        assert _pair((2, 5)) == (2, 5)

    def test_numpy_integers_coerced_to_python_int(self):
        result = _pair((np.int64(2), np.int32(3)))
        assert result == (2, 3)
        assert type(result[0]) is int and type(result[1]) is int
        result = _pair(np.int64(4))
        assert result == (4, 4)
        assert type(result[0]) is int


class TestBatchNormEvalCache:
    def _stats_tensor_ids(self, norm):
        mean, var = norm._eval_stats()
        return id(mean), id(var)

    def test_eval_stats_cached_across_forwards(self):
        norm = BatchNorm2d(4)
        norm.eval()
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4, 3, 3)))
        first = self._stats_tensor_ids(norm)
        norm(x)
        assert self._stats_tensor_ids(norm) == first

    def test_inplace_running_update_visible_through_cache(self):
        norm = BatchNorm2d(4)
        x = Tensor(np.random.default_rng(1).normal(size=(8, 4, 3, 3)))
        norm.eval()
        before = norm(x).data.copy()
        ids = self._stats_tensor_ids(norm)
        norm.train()
        norm(x)  # updates running stats in place
        norm.eval()
        after = norm(x).data
        assert not np.array_equal(before, after)
        assert self._stats_tensor_ids(norm) == ids  # cache survived, values moved

    def test_load_state_dict_visible_through_cache(self):
        source = BatchNorm2d(4)
        source.train()
        source(Tensor(np.random.default_rng(2).normal(size=(8, 4, 3, 3))))
        target = BatchNorm2d(4)
        target.eval()
        x = Tensor(np.random.default_rng(3).normal(size=(2, 4, 3, 3)))
        before = target(x).data.copy()
        ids = self._stats_tensor_ids(target)
        target.load_state_dict(source.state_dict())
        after = target(x).data
        assert not np.array_equal(before, after)
        assert self._stats_tensor_ids(target) == ids

    def test_buffer_replacement_rebuilds_cache(self):
        norm = BatchNorm2d(4)
        norm.eval()
        ids = self._stats_tensor_ids(norm)
        norm.register_buffer("running_mean", np.full(4, 2.0))
        assert self._stats_tensor_ids(norm) != ids

    def test_eval_output_matches_manual_normalisation(self):
        norm = BatchNorm2d(3)
        norm.train()
        rng = np.random.default_rng(4)
        norm(Tensor(rng.normal(size=(16, 3, 4, 4))))
        norm.eval()
        x = rng.normal(size=(2, 3, 4, 4))
        out = norm(Tensor(x)).data
        mean = norm._buffers["running_mean"].reshape(1, -1, 1, 1)
        var = norm._buffers["running_var"].reshape(1, -1, 1, 1)
        expected = (x - mean) / (var + norm.eps) ** 0.5
        np.testing.assert_allclose(out, expected, rtol=1e-12)


def test_float32_search_runs_end_to_end(tmp_path):
    """A float32 baseline search completes and yields a finite design.

    Not bit-identical to float64 by design — the point is that the whole
    pipeline (supernet, gates, losses, optimisers, checkpoint round-trips)
    tolerates the opt-in policy.  The float64 default is fenced separately
    by the golden-run suites.
    """
    from repro.experiments.runner import Runner

    config = ExperimentConfig(
        method="baseline",
        seed=0,
        retrain_final=False,
        train_dtype="float32",
        **TINY_RUN,
    )
    result = Runner(base_dir=tmp_path).run(config)
    assert result is not None
    assert np.isfinite(result.edap)
    assert result.op_indices.shape == (TINY_RUN["num_searchable"],)
