"""Tests for the adaptive promotion-sweep subsystem
(`repro.experiments.schedulers`): ladder math, the SHA/ASHA cut rules and
their determinism guarantees, the crash-safe schedule state file and its
lock, and end-to-end scheduled sweeps — including the ISSUE acceptance
criteria (jobs-count independence of the promotion set, grid byte-identity,
and crash recovery to the same schedule).
"""

from __future__ import annotations

import itertools
import json
import math
from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig, Runner, SweepPlan, run_sweep
from repro.experiments.runner import CHECKPOINT_FILE, RESULT_FILE
from repro.experiments.schedulers import (
    ASHA,
    PROMOTED,
    RETIRED,
    GridScheduler,
    ScheduleCoordinator,
    ScheduleState,
    StateLock,
    SuccessiveHalving,
    available_schedulers,
    build_ladder,
    build_scheduler,
    load_state,
    register_candidates,
    rung_score,
    save_state,
    schedule_overview,
    score_order,
)
from repro.experiments.schedulers.state import (
    RETIRED_FILE,
    STATE_FILE,
    STATE_LOCK_FILE,
    state_lock_ttl,
)
from repro.experiments.sweep import FAILED_FILE, LOCK_FILE, item_state

from test_parallel_sweep import TINY_SWEEP, age_file, normalized_result_bytes


def tiny_config(**overrides) -> ExperimentConfig:
    """A sub-second run with enough search steps for a two-cut ladder."""
    return ExperimentConfig(
        **{"method": "baseline", "seed": 0, **TINY_SWEEP, "search_epochs": 4, **overrides}
    )


def asha_plan(base_dir: Path):
    """The canonical 4-candidate ASHA fixture: ladder (4,2,1) at eta=2."""
    plan = SweepPlan.from_grid(tiny_config(), methods=["baseline"], seeds=[0, 1, 2, 3])
    return plan, ASHA(eta=2, min_steps=1)


# ----------------------------------------------------------------------
# Ladder math
# ----------------------------------------------------------------------
class TestLadder:
    def test_textbook_ladder(self):
        ladder = build_ladder(4, eta=2, min_steps=1)
        assert ladder.populations == (4, 2, 1)
        assert ladder.quotas == (2, 1, 0)
        assert ladder.budgets == (1, 2, None)
        assert ladder.num_rungs == 3

    def test_budgets_scale_with_min_steps(self):
        ladder = build_ladder(9, eta=3, min_steps=5)
        assert ladder.populations == (9, 3, 1)
        assert ladder.budgets == (5, 15, None)

    def test_non_power_populations_floor(self):
        ladder = build_ladder(10, eta=3, min_steps=1)
        assert ladder.populations == (10, 3, 1)
        assert ladder.quotas == (3, 1, 0)

    def test_fewer_candidates_than_eta_degenerates_to_grid(self):
        ladder = build_ladder(2, eta=3, min_steps=1)
        assert ladder.populations == (2,)
        assert ladder.quotas == (0,)
        assert ladder.budgets == (None,)

    def test_grid_scheduler_ladder_is_one_final_rung(self):
        ladder = GridScheduler().ladder(7)
        assert (ladder.populations, ladder.quotas, ladder.budgets) == ((7,), (0,), (None,))

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one candidate"):
            build_ladder(0, eta=2, min_steps=1)
        with pytest.raises(ValueError, match="eta"):
            build_ladder(4, eta=1, min_steps=1)
        with pytest.raises(ValueError, match="min_steps"):
            build_ladder(4, eta=2, min_steps=0)
        with pytest.raises(ValueError, match="eta"):
            SuccessiveHalving(eta=1)
        with pytest.raises(ValueError, match="min_steps"):
            ASHA(min_steps=0)


# ----------------------------------------------------------------------
# Scores and the total order
# ----------------------------------------------------------------------
class TestRungScore:
    def test_known_signals(self):
        assert rung_score({"reward": 0.8}) == pytest.approx(-0.8)
        assert rung_score({"train_ce": 1.25}) == pytest.approx(1.25)
        assert rung_score({"accuracy": 0.9}) == pytest.approx(-0.9)
        # reward outranks the other keys when several are present
        assert rung_score({"reward": 1.0, "train_ce": 2.0}) == pytest.approx(-1.0)

    def test_unusable_records_are_none(self):
        assert rung_score(None) is None
        assert rung_score([1, 2]) is None
        assert rung_score({"loss": 1.0}) is None
        assert rung_score({"train_ce": "soup"}) is None
        assert rung_score({"train_ce": float("nan")}) is None
        assert rung_score({"reward": math.inf}) is None

    def test_none_ranks_behind_every_finite_score(self):
        assert score_order(None, "a") > score_order(1e12, "z")
        assert score_order(0.5, "b") < score_order(0.5, "c")  # name tie-break


# ----------------------------------------------------------------------
# Cut rules: SHA barrier, ASHA guaranteed top-k, determinism
# ----------------------------------------------------------------------
LEDGER = {"a": 0.3, "b": 0.1, "c": 0.5, "d": 0.1, "e": None}


class TestDecide:
    def test_halving_waits_for_the_full_rung(self):
        sha = SuccessiveHalving(eta=2)
        partial = {k: LEDGER[k] for k in ("a", "b", "c", "d")}
        assert sha.decide(partial, population=5, quota=2) == {}

    def test_halving_cuts_top_quota_with_name_tiebreak(self):
        decisions = SuccessiveHalving(eta=2).decide(LEDGER, population=5, quota=2)
        # 0.1 ties between b and d: the name breaks it; None ranks last.
        assert decisions == {
            "b": PROMOTED,
            "d": PROMOTED,
            "a": RETIRED,
            "c": RETIRED,
            "e": RETIRED,
        }

    def test_asha_promotes_only_guaranteed_top_k(self):
        asha = ASHA(eta=2)
        # One score known of five, quota 2: rank 0 + 4 pending >= 2 — nothing
        # is safe to promote, and rank 0 < quota so nothing retires either.
        assert asha.decide({"b": 0.1}, population=5, quota=2) == {}
        # Three known, two pending: the leader is still not guaranteed top-2
        # (both pending could beat it), but rank 2 is already out.
        assert asha.decide(
            {"b": 0.1, "a": 0.3, "c": 0.5}, population=5, quota=2
        ) == {"c": RETIRED}
        # Complete ledger: ASHA equals the synchronous cut.
        assert asha.decide(LEDGER, population=5, quota=2) == SuccessiveHalving(eta=2).decide(
            LEDGER, population=5, quota=2
        )

    def test_zero_quota_never_decides(self):
        assert SuccessiveHalving(eta=2).decide(LEDGER, population=5, quota=0) == {}
        assert ASHA(eta=2).decide(LEDGER, population=5, quota=0) == {}
        assert GridScheduler().decide(LEDGER, population=5, quota=0) == {}

    def test_asha_early_decisions_agree_with_the_complete_ledger(self):
        """The monotonicity guarantee: for every arrival order and every
        prefix of it, each ASHA verdict equals the verdict the complete
        ledger assigns — so the async promotion set is arrival-independent."""
        asha = ASHA(eta=2)
        final = SuccessiveHalving(eta=2).decide(LEDGER, population=5, quota=2)
        for order in itertools.permutations(LEDGER):
            for cut in range(1, len(order) + 1):
                seen = {name: LEDGER[name] for name in order[:cut]}
                for name, verdict in asha.decide(seen, population=5, quota=2).items():
                    assert verdict == final[name], (order, cut, name)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_names_and_parameters(self):
        assert available_schedulers() == ["asha", "grid", "halving"]
        scheduler = build_scheduler("asha", eta=2, min_steps=3)
        assert (scheduler.name, scheduler.eta, scheduler.min_steps) == ("asha", 2, 3)
        assert build_scheduler("grid").name == "grid"

    def test_unknown_name_hints(self):
        with pytest.raises(ValueError, match="asha"):
            build_scheduler("ahsa")


# ----------------------------------------------------------------------
# Schedule state: round-trip, validation, lock discipline
# ----------------------------------------------------------------------
class TestScheduleState:
    def test_round_trip(self, tmp_path):
        state = ScheduleState(
            scheduler="asha",
            eta=2,
            min_steps=1,
            candidates=["a", "b"],
            scores={"0": {"a": 0.5, "b": None}},
            decisions={"0": {"a": PROMOTED, "b": RETIRED}},
        )
        save_state(state, tmp_path)
        loaded = load_state(tmp_path)
        assert loaded == state
        assert loaded.rung_scores(0) == {"a": 0.5, "b": None}
        assert loaded.is_retired("b") and not loaded.is_retired("a")
        assert loaded.candidate_rung("a") == 1 and loaded.candidate_rung("c") == 0
        assert loaded.gated_in("a", 1) and not loaded.gated_in("b", 1)

    def test_missing_state_is_none_and_torn_state_raises(self, tmp_path):
        assert load_state(tmp_path) is None
        (tmp_path / STATE_FILE).write_text('{"schema_version": 1, "cand', encoding="utf-8")
        with pytest.raises(ValueError, match="unreadable"):
            load_state(tmp_path)

    def test_from_dict_validation(self):
        with pytest.raises(ValueError, match="JSON object"):
            ScheduleState.from_dict([1])
        with pytest.raises(ValueError, match="version"):
            ScheduleState.from_dict({"schema_version": 99})
        with pytest.raises(ValueError, match="candidates"):
            ScheduleState.from_dict({"schema_version": 1, "candidates": "abc"})

    def test_lock_is_exclusive_and_token_checked(self, tmp_path):
        holder = StateLock(tmp_path, ttl=60)
        other = StateLock(tmp_path, ttl=60)
        assert holder.try_acquire()
        assert not other.try_acquire()
        other.release()  # never held it: must not unlink the holder's file
        assert (tmp_path / STATE_LOCK_FILE).exists()
        holder.release()
        assert not (tmp_path / STATE_LOCK_FILE).exists()

    def test_stale_lock_is_broken_after_ttl(self, tmp_path):
        """A worker SIGKILLed while holding the schedule lock must not stall
        the schedule: the next acquire breaks the lock once it goes stale."""
        dead = StateLock(tmp_path, ttl=60)
        assert dead.try_acquire()
        survivor = StateLock(tmp_path, ttl=60)
        assert not survivor.try_acquire()
        age_file(tmp_path / STATE_LOCK_FILE, 120)
        assert survivor.try_acquire()
        dead.release()  # token no longer matches: must not unlink
        assert (tmp_path / STATE_LOCK_FILE).exists()
        survivor.release()

    def test_state_lock_ttl_is_capped(self):
        assert state_lock_ttl(3600) == 60.0
        assert state_lock_ttl(5) == 5.0


class TestRegisterCandidates:
    def test_create_then_extend_then_freeze(self, tmp_path):
        asha = ASHA(eta=2)
        state = register_candidates(tmp_path, asha, ["b", "a"], lock_ttl=60)
        assert state.candidates == ["a", "b"]  # sorted: fixes the ladder
        state = register_candidates(tmp_path, asha, ["c"], lock_ttl=60)
        assert state.candidates == ["a", "b", "c"]
        # Once any cut is recorded the geometry is frozen.
        state.decisions["0"] = {"c": RETIRED}
        save_state(state, tmp_path)
        register_candidates(tmp_path, asha, ["a"], lock_ttl=60)  # re-register: no-op
        with pytest.raises(ValueError, match="fresh runs directory"):
            register_candidates(tmp_path, asha, ["d"], lock_ttl=60)

    def test_parameter_mismatch_is_rejected(self, tmp_path):
        register_candidates(tmp_path, ASHA(eta=2), ["a"], lock_ttl=60)
        with pytest.raises(ValueError, match="--eta 2"):
            register_candidates(tmp_path, ASHA(eta=3), ["a"], lock_ttl=60)
        with pytest.raises(ValueError, match="relaunch"):
            register_candidates(tmp_path, SuccessiveHalving(eta=2), ["a"], lock_ttl=60)


# ----------------------------------------------------------------------
# End-to-end scheduled sweeps: the ISSUE acceptance criteria
# ----------------------------------------------------------------------
class TestScheduledSweep:
    def run_asha(self, base_dir: Path, jobs: int):
        plan, scheduler = asha_plan(base_dir)
        return run_sweep(plan, base_dir=base_dir, jobs=jobs, lock_ttl=60, scheduler=scheduler)

    def test_asha_retires_down_the_ladder(self, tmp_path):
        outcome = self.run_asha(tmp_path, jobs=1)
        assert outcome.complete
        assert len(outcome.results) == 1 and len(outcome.retired) == 3
        state = load_state(tmp_path)
        # Ladder (4, 2, 1): two cut at rung 0, one more at rung 1.
        assert sorted(state.rung_decisions(0).values()) == [PROMOTED, PROMOTED, RETIRED, RETIRED]
        assert sorted(state.rung_decisions(1).values()) == [PROMOTED, RETIRED]
        for name in outcome.retired:
            marker = tmp_path / name / RETIRED_FILE
            assert json.loads(marker.read_text())["state"] == "retired"
            assert not (tmp_path / name / RESULT_FILE).exists()
            assert item_state(tmp_path / name, lock_ttl=60) == "retired"
        survivors = [path.parent.name for path in tmp_path.glob(f"*/{RESULT_FILE}")]
        assert len(survivors) == 1 and survivors[0] not in outcome.retired
        assert not list(tmp_path.rglob(LOCK_FILE))

    def test_promotion_set_is_independent_of_worker_count(self, tmp_path):
        """The acceptance criterion: `--scheduler asha --jobs 2` retires the
        same candidates as `--jobs 1` and the survivor's result.json is
        byte-identical (modulo wall-clock)."""
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        serial = self.run_asha(serial_dir, jobs=1)
        parallel = self.run_asha(parallel_dir, jobs=2)
        assert load_state(serial_dir).decisions == load_state(parallel_dir).decisions
        assert sorted(serial.retired) == sorted(parallel.retired)
        names = {path.parent.name for path in serial_dir.glob(f"*/{RESULT_FILE}")}
        assert names == {path.parent.name for path in parallel_dir.glob(f"*/{RESULT_FILE}")}
        for name in names:
            assert normalized_result_bytes(
                serial_dir / name / RESULT_FILE
            ) == normalized_result_bytes(parallel_dir / name / RESULT_FILE)

    def test_survivor_matches_an_uninterrupted_run(self, tmp_path):
        """Rung pauses + resumes must not perturb the survivor's training:
        its result is bit-identical to the same config run in one go."""
        scheduled = tmp_path / "scheduled"
        outcome = self.run_asha(scheduled, jobs=1)
        assert outcome.complete
        survivor_dir = next(scheduled.glob(f"*/{RESULT_FILE}")).parent
        seed = int(survivor_dir.name.rsplit("seed", 1)[1])
        reference = tmp_path / "reference"
        Runner(base_dir=reference).run(tiny_config(seed=seed))
        assert normalized_result_bytes(survivor_dir / RESULT_FILE) == normalized_result_bytes(
            reference / survivor_dir.name / RESULT_FILE
        )

    def test_crashed_worker_mid_promotion_converges(self, tmp_path):
        """Satellite: kill a worker mid-promotion — state saved, one RETIRED
        marker unwritten, the schedule lock and a run lock left behind — and
        a surviving sweep reaches the reference promotion set."""
        reference_dir = tmp_path / "reference"
        self.run_asha(reference_dir, jobs=1)
        reference = load_state(reference_dir)

        crashed = tmp_path / "crashed"
        plan, scheduler = asha_plan(crashed)
        runner = Runner(base_dir=crashed)
        for item in plan:  # every candidate paused at the rung-0 budget
            assert runner.run(item.config, max_steps=1) is None
        coordinator = ScheduleCoordinator(
            crashed, scheduler, [item.name for item in plan], lock_ttl=60
        )
        coordinator.sync()  # harvests rung 0 and cuts it
        state = load_state(crashed)
        retired_names = [n for n in state.candidates if state.is_retired(n)]
        assert len(retired_names) == 2
        # The "crash": one retirement marker never got written, the worker
        # still holds the schedule lock and a claim on a promoted run.
        (crashed / retired_names[0] / RETIRED_FILE).unlink()
        (crashed / STATE_LOCK_FILE).write_text('{"token": "dead-worker"}')
        age_file(crashed / STATE_LOCK_FILE, 120)
        promoted = next(n for n in state.candidates if not state.is_retired(n))
        (crashed / promoted / LOCK_FILE).write_text('{"token": "dead-worker"}')
        age_file(crashed / promoted / LOCK_FILE, 120)

        outcome = run_sweep(plan, base_dir=crashed, jobs=1, lock_ttl=60, scheduler=scheduler)
        assert outcome.complete
        assert load_state(crashed).decisions == reference.decisions
        assert (crashed / retired_names[0] / RETIRED_FILE).exists()  # repaired
        survivor = next(crashed.glob(f"*/{RESULT_FILE}")).parent.name
        assert normalized_result_bytes(
            crashed / survivor / RESULT_FILE
        ) == normalized_result_bytes(reference_dir / survivor / RESULT_FILE)

    def test_grid_scheduler_is_byte_identical_to_no_scheduler(self, tmp_path):
        """`--scheduler grid` routes through the legacy drain: same bytes,
        no schedule state file, nothing retired."""
        plain_dir, grid_dir = tmp_path / "plain", tmp_path / "grid"
        plan = SweepPlan.from_grid(tiny_config(), methods=["baseline"], seeds=[0, 1])
        plain = run_sweep(plan, base_dir=plain_dir, jobs=1, lock_ttl=60)
        grid = run_sweep(
            plan, base_dir=grid_dir, jobs=1, lock_ttl=60, scheduler=GridScheduler()
        )
        assert plain.complete and grid.complete and not grid.retired
        assert not (grid_dir / STATE_FILE).exists()
        for item in plan:
            assert normalized_result_bytes(
                plain_dir / item.name / RESULT_FILE
            ) == normalized_result_bytes(grid_dir / item.name / RESULT_FILE)

    def test_failed_candidate_retires_nobody_and_ends_the_sweep(self, tmp_path, monkeypatch):
        """A candidate that crashes (FAILED.txt, no score) blocks its rung's
        quota forever; the sweep must report it unfinished and exit instead
        of spinning."""
        plan, scheduler = asha_plan(tmp_path)
        original = Runner.run

        def failing_run(self, cfg, *args, **kwargs):
            if cfg.seed == 0:
                raise RuntimeError("boom")
            return original(self, cfg, *args, **kwargs)

        monkeypatch.setattr(Runner, "run", failing_run)
        outcome = run_sweep(plan, base_dir=tmp_path, jobs=1, lock_ttl=60, scheduler=scheduler)
        assert "baseline-cifar-seed0" in outcome.unfinished
        assert (tmp_path / "baseline-cifar-seed0" / FAILED_FILE).exists()
        assert item_state(tmp_path / "baseline-cifar-seed0", lock_ttl=60) == "failed"


# ----------------------------------------------------------------------
# Browser/report integration
# ----------------------------------------------------------------------
class TestReporting:
    def test_retired_state_is_distinct_from_failed(self, tmp_path):
        workdir = tmp_path / "run"
        workdir.mkdir()
        (workdir / RETIRED_FILE).write_text('{"state": "retired"}')
        assert item_state(workdir, lock_ttl=60) == "retired"
        (workdir / FAILED_FILE).write_text("boom")
        assert item_state(workdir, lock_ttl=60) == "retired"  # outranks failed
        (workdir / RESULT_FILE).write_text("{}")
        assert item_state(workdir, lock_ttl=60) == "finished"  # result outranks all

    def test_retired_runs_are_not_replanned(self, tmp_path):
        from repro.experiments.runner import CONFIG_FILE

        workdir = tmp_path / tiny_config().name
        workdir.mkdir()
        (workdir / CONFIG_FILE).write_text(json.dumps(tiny_config().to_dict()))
        assert len(SweepPlan.from_directory(tmp_path)) == 1
        (workdir / RETIRED_FILE).write_text('{"state": "retired"}')
        assert len(SweepPlan.from_directory(tmp_path)) == 0

    def test_schedule_overview_tallies(self):
        state = ScheduleState(
            scheduler="asha",
            eta=2,
            min_steps=1,
            candidates=["a", "b", "c", "d"],
            scores={"0": {"a": 0.1, "b": 0.2, "c": 0.3}},
            decisions={"0": {"a": PROMOTED, "c": RETIRED}},
        )
        overview = schedule_overview(state, live_states={"a": "running"})
        assert (overview["name"], overview["candidates"]) == ("asha", 4)
        rung0, rung1, rung2 = overview["rungs"]
        assert (rung0["population"], rung0["quota"], rung0["budget"]) == (4, 2, 1)
        assert (rung0["scored"], rung0["promoted"], rung0["retired"]) == (3, 1, 1)
        assert rung1["running"] == 1  # "a" is past rung 0 and running
        assert (rung2["budget"], rung2["quota"]) == (None, 0)

    def test_report_summary_renders_the_schedule(self, tmp_path, capsys):
        from repro.__main__ import main

        sets = [f"--set={k}={v}" for k, v in {**TINY_SWEEP, "search_epochs": 4}.items()]
        argv = ["--runs-dir", str(tmp_path), "sweep", "--methods", "baseline",
                "--seeds", "0", "1", "2", "3", "--scheduler", "asha", "--eta", "2", *sets]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "3 run(s) retired by the asha scheduler" in out
        assert main(["--runs-dir", str(tmp_path), "report", "--summary"]) == 0
        summary = capsys.readouterr().out
        assert "Scheduler: asha" in summary
        assert "Retired" in summary
        retired_line = [l for l in summary.splitlines() if l.startswith("2 ")]
        assert retired_line  # final rung row renders with budget "full"

    def test_cli_rejects_bad_scheduler_flags(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["--runs-dir", str(tmp_path), "sweep", "--scheduler", "warp"])
        with pytest.raises(SystemExit):
            main(["--runs-dir", str(tmp_path), "sweep", "--scheduler", "asha",
                  "--min-steps", "0"])
