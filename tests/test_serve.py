"""End-to-end coverage of the serve API (`repro.serve`) and the `repro.api`
facade behind it: endpoint round-trips against a threaded live server,
CLI-vs-HTTP byte parity on cold and warm caches, resident cost-table reuse,
job submission drained by an ordinary ``sweep --queue`` worker, malformed
requests answered with did-you-mean bodies, and concurrent GETs while a
writer mutates the runs directory.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro import api
from repro.__main__ import main
from repro.experiments.browser import CACHE_FILE
from repro.experiments.runner import CONFIG_FILE, RESULT_FILE
from repro.experiments.sweep import SweepPlan
from repro.serve import create_server

from test_browser import config_payload, make_run, result_payload
from test_parallel_sweep import TINY_SWEEP


# ----------------------------------------------------------------------
# Live-server fixture and HTTP helpers
# ----------------------------------------------------------------------
@pytest.fixture
def runs_root(tmp_path: Path) -> Path:
    root = tmp_path / "runs"
    make_run(root, "a-run", result=result_payload(accuracy=0.42), config=config_payload())
    make_run(
        root,
        "b-run",
        result=result_payload(method="baseline", accuracy=0.6),
        config=config_payload(method="baseline", seed=1),
    )
    make_run(root, "pending-run", config=config_payload(seed=4))
    return root


@pytest.fixture
def live_server(runs_root: Path):
    """A ThreadingHTTPServer on a free port, torn down after the test."""
    server = create_server(runs_root, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def http_get(server, path: str):
    """``(status, body_text)`` of a GET against the live server."""
    try:
        with urllib.request.urlopen(server.url + path) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def http_get_raw(server, path: str, headers=None):
    """``(status, body_bytes, headers)`` without urllib's error mapping —
    needed for 304 responses, which urllib treats as errors."""
    import http.client

    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        connection.request("GET", path, headers=headers or {})
        response = connection.getresponse()
        return response.status, response.read(), dict(response.getheaders())
    finally:
        connection.close()


def http_post(server, path: str, payload) -> tuple:
    body = payload if isinstance(payload, bytes) else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        server.url + path,
        data=body,
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def cli_stdout(capsys, argv) -> str:
    assert main(argv) == 0
    return capsys.readouterr().out


# ----------------------------------------------------------------------
# Endpoint round-trips
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_index_lists_endpoints(self, live_server):
        status, body = http_get(live_server, "/")
        data = json.loads(body)
        assert status == 200
        assert data["schema_version"] == api.SCHEMA_VERSION
        assert "GET /v1/report" in data["endpoints"]

    def test_report_round_trip(self, live_server):
        status, body = http_get(live_server, "/v1/report")
        data = json.loads(body)
        assert status == 200
        assert data["schema_version"] == api.SCHEMA_VERSION
        assert {result["method"] for result in data["results"]} == {
            "DANCE (w/ FF)",
            "baseline",
        }
        assert data["summary"]["states"] == {"finished": 2, "pending": 1}
        assert [record["run"] for record in data["pareto"]]

    def test_summary_round_trip(self, live_server):
        status, body = http_get(live_server, "/v1/summary")
        data = json.loads(body)
        assert status == 200
        assert data["runs"] == 3
        assert data["states"] == {"finished": 2, "pending": 1}
        assert data["slices"] == [
            {"backend": "eyeriss", "task": "cifar", "finished": 2, "total": 3}
        ]

    def test_run_document_round_trip(self, live_server):
        status, body = http_get(live_server, "/v1/runs/a-run")
        data = json.loads(body)
        assert status == 200
        assert data["state"] == "finished"
        assert data["result"]["accuracy"] == 0.42
        status, body = http_get(live_server, "/v1/runs/pending-run")
        data = json.loads(body)
        assert (data["state"], data["result"]) == ("pending", None)

    def test_filters_slice_like_the_cli(self, live_server, runs_root):
        status, body = http_get(live_server, "/v1/report?method=baseline")
        data = json.loads(body)
        assert status == 200
        assert [result["method"] for result in data["results"]] == ["baseline"]
        assert data["summary"]["run_dirs"] == 1

    def test_unknown_run_is_404_with_hint(self, live_server):
        status, body = http_get(live_server, "/v1/runs/a-runn")
        assert status == 404
        assert "did you mean 'a-run'" in json.loads(body)["error"]

    def test_unknown_endpoint_is_404(self, live_server):
        status, body = http_get(live_server, "/v1/reprot")
        assert status == 404
        assert "/v1/report" in json.loads(body)["error"]

    def test_unknown_query_param_is_400_with_hint(self, live_server):
        status, body = http_get(live_server, "/v1/report?bakend=eyeriss")
        assert status == 400
        assert "did you mean 'backend'" in json.loads(body)["error"]


# ----------------------------------------------------------------------
# CLI-vs-HTTP byte parity
# ----------------------------------------------------------------------
class TestByteParity:
    def test_report_parity_cold_then_warm(self, live_server, runs_root, capsys):
        assert not (runs_root / CACHE_FILE).exists()  # cold: server scan seeds it
        _, cold_body = http_get(live_server, "/v1/report")
        assert (runs_root / CACHE_FILE).exists()
        cli = cli_stdout(capsys, ["--runs-dir", str(runs_root), "report", "--format", "json"])
        assert cold_body == cli
        _, warm_body = http_get(live_server, "/v1/report")  # warm: cache hit
        assert warm_body == cold_body

    def test_summary_and_pareto_parity(self, live_server, runs_root, capsys):
        for path, flag in (("/v1/summary", "--summary"), ("/v1/pareto", "--pareto")):
            _, body = http_get(live_server, path)
            cli = cli_stdout(
                capsys, ["--runs-dir", str(runs_root), "report", flag, "--format", "json"]
            )
            assert body == cli, f"{path} body differs from report {flag} --format json"

    def test_cache_control_params_match_cli_flags(self, live_server, runs_root, capsys):
        _, refreshed = http_get(live_server, "/v1/report?refresh=1")
        cli = cli_stdout(
            capsys, ["--runs-dir", str(runs_root), "report", "--format", "json", "--refresh"]
        )
        assert refreshed == cli
        _, uncached = http_get(live_server, "/v1/report?cache=0")
        cli = cli_stdout(
            capsys, ["--runs-dir", str(runs_root), "report", "--format", "json", "--no-cache"]
        )
        assert uncached == cli

    def test_filtered_parity(self, live_server, runs_root, capsys):
        _, body = http_get(live_server, "/v1/report?backend=eyeriss&task=cifar")
        cli = cli_stdout(
            capsys,
            [
                "--runs-dir",
                str(runs_root),
                "report",
                "--format",
                "json",
                "--filter",
                "backend=eyeriss,task=cifar",
            ],
        )
        assert body == cli


# ----------------------------------------------------------------------
# ETag revalidation on the report family
# ----------------------------------------------------------------------
class TestRevalidation:
    def test_etag_round_trip_and_invalidation(self, live_server, runs_root):
        status, body, headers = http_get_raw(live_server, "/v1/report")
        etag = headers["ETag"]
        assert status == 200
        assert etag.startswith('"') and etag.endswith('"')
        status, cached_body, cached_headers = http_get_raw(
            live_server, "/v1/report", headers={"If-None-Match": etag}
        )
        assert (status, cached_body) == (304, b"")  # bodyless, transfer saved
        assert cached_headers["ETag"] == etag
        # The tree changes -> the body changes -> the old tag stops matching.
        make_run(runs_root, "c-run", result=result_payload(accuracy=0.7))
        status, new_body, new_headers = http_get_raw(
            live_server, "/v1/report", headers={"If-None-Match": etag}
        )
        assert status == 200
        assert new_headers["ETag"] != etag
        assert new_body != body

    def test_if_none_match_grammar(self, live_server):
        _, _, headers = http_get_raw(live_server, "/v1/summary")
        etag = headers["ETag"]
        for value in ("*", f'"nope", {etag}', f"W/{etag}"):
            status, _, _ = http_get_raw(
                live_server, "/v1/summary", headers={"If-None-Match": value}
            )
            assert status == 304, f"If-None-Match: {value} should revalidate"
        status, _, _ = http_get_raw(
            live_server, "/v1/summary", headers={"If-None-Match": '"stale"'}
        )
        assert status == 200

    def test_all_report_family_endpoints_carry_etags(self, live_server):
        for path in ("/v1/report", "/v1/pareto", "/v1/summary"):
            _, _, headers = http_get_raw(live_server, path)
            assert "ETag" in headers, f"{path} is missing its ETag"


# ----------------------------------------------------------------------
# The schedule endpoint and scheduler-aware job submission
# ----------------------------------------------------------------------
class TestScheduleEndpoint:
    def test_empty_without_a_schedule(self, live_server):
        status, body = http_get(live_server, "/v1/sweep/schedule")
        data = json.loads(body)
        assert status == 200
        assert (data["scheduler"], data["candidates"]) == (None, [])

    def test_schedule_round_trip(self, live_server, runs_root):
        from repro.experiments.schedulers import ASHA, register_candidates

        register_candidates(runs_root, ASHA(eta=2), ["a-run", "b-run"], lock_ttl=60)
        status, body = http_get(live_server, "/v1/sweep/schedule")
        data = json.loads(body)
        assert status == 200
        schedule = data["scheduler"]
        assert (schedule["name"], schedule["eta"], schedule["candidates"]) == ("asha", 2, 2)
        assert [row["name"] for row in data["candidates"]] == ["a-run", "b-run"]
        assert all(row["decision"] is None for row in data["candidates"])

    def test_summary_carries_the_same_overview(self, live_server, runs_root):
        from repro.experiments.schedulers import ASHA, register_candidates

        register_candidates(runs_root, ASHA(eta=2), ["a-run", "b-run"], lock_ttl=60)
        _, summary_body = http_get(live_server, "/v1/summary?refresh=1")
        _, schedule_body = http_get(live_server, "/v1/sweep/schedule")
        assert (
            json.loads(summary_body)["scheduler"] == json.loads(schedule_body)["scheduler"]
        )

    def test_job_submission_with_scheduler_fields(self, live_server, runs_root):
        from repro.experiments.schedulers import load_state

        payload = tiny_job_payload(seed=21, scheduler="asha", eta=2, min_steps=1)
        status, body = http_post(live_server, "/v1/jobs", payload)
        assert status == 201
        state = load_state(runs_root)
        assert state.scheduler == "asha"
        assert "baseline-cifar-seed21" in state.candidates
        # A second submission disagreeing on the parameters is rejected —
        # and must not leave a pending run directory behind.
        status, body = http_post(
            live_server, "/v1/jobs", tiny_job_payload(seed=22, scheduler="asha", eta=3)
        )
        assert status == 400
        assert "relaunch with the same parameters" in json.loads(body)["error"]
        assert not (runs_root / "baseline-cifar-seed22").exists()

    def test_eta_without_scheduler_is_400(self, live_server):
        status, body = http_post(live_server, "/v1/jobs", tiny_job_payload(seed=23, eta=2))
        assert status == 400
        assert "without a scheduler" in json.loads(body)["error"]


# ----------------------------------------------------------------------
# Cost queries from resident tables
# ----------------------------------------------------------------------
class TestCostEndpoint:
    def test_cost_defaults_and_residency(self, live_server):
        status, body = http_get(live_server, "/v1/cost")
        data = json.loads(body)
        assert status == 200
        assert (data["backend"], data["task"], data["hw_space"]) == (
            "eyeriss",
            "cifar",
            "tiny",
        )
        assert data["layers"] and all(
            set(layer) == {"layer", "latency_ms", "energy_mj", "utilization"}
            for layer in data["layers"]
        )
        totals = data["totals"]
        assert totals["edap"] == pytest.approx(
            totals["latency_ms"] * totals["energy_mj"] * totals["area_mm2"]
        )
        assert live_server.cost_tables.stats()["builds"] == 1
        status, again = http_get(live_server, "/v1/cost?arch=1,0,2,0,1,0,0,0,3")
        assert status == 200
        stats = live_server.cost_tables.stats()
        assert (stats["builds"], stats["hits"]) == (1, 1)  # same key: no rebuild

    def test_cost_field_constraints(self, live_server):
        _, body = http_get(live_server, "/v1/cost")
        unconstrained = json.loads(body)
        field, value = next(iter(unconstrained["config"].items()))
        status, body = http_get(live_server, f"/v1/cost?{field}={value}")
        data = json.loads(body)
        assert status == 200
        assert data["config"][field] == value
        assert 0 < data["configs_matched"] < unconstrained["configs_matched"]

    def test_cost_unknown_field_is_400_with_hint(self, live_server):
        status, body = http_get(live_server, "/v1/cost?pe_xx=8")
        assert status == 400
        assert "did you mean 'pe_x'" in json.loads(body)["error"]

    def test_cost_unknown_backend_is_400_with_hint(self, live_server):
        status, body = http_get(live_server, "/v1/cost?backend=eyerriss")
        assert status == 400
        assert "did you mean 'eyeriss'" in json.loads(body)["error"]

    def test_cost_bad_arch_is_400(self, live_server):
        status, body = http_get(live_server, "/v1/cost?arch=1,banana")
        assert status == 400
        assert "comma-separated integers" in json.loads(body)["error"]
        status, body = http_get(live_server, "/v1/cost?arch=1,2")
        assert status == 400  # wrong position count


# ----------------------------------------------------------------------
# Job submission and queue drain
# ----------------------------------------------------------------------
def tiny_job_payload(**overrides) -> dict:
    return {"method": "baseline", "seed": 7, **TINY_SWEEP, **overrides}


class TestJobs:
    def test_submit_then_drain_with_sweep_queue(self, live_server, runs_root, capsys):
        status, body = http_post(live_server, "/v1/jobs", tiny_job_payload())
        data = json.loads(body)
        assert status == 201
        assert (data["name"], data["state"]) == ("baseline-cifar-seed7", "pending")
        assert (runs_root / "baseline-cifar-seed7" / CONFIG_FILE).exists()

        status, body = http_get(live_server, "/v1/jobs/baseline-cifar-seed7")
        assert (status, json.loads(body)["state"]) == (200, "pending")

        # An ordinary queue worker drains the submitted job to a result.
        assert main(["--runs-dir", str(runs_root), "sweep", "--queue", "--jobs", "1"]) == 0
        capsys.readouterr()
        assert (runs_root / "baseline-cifar-seed7" / RESULT_FILE).exists()

        status, body = http_get(live_server, "/v1/jobs/baseline-cifar-seed7")
        data = json.loads(body)
        assert (status, data["state"]) == (200, "finished")
        assert data["result"]["method"] == "Baseline (No penalty) + HW"

    def test_resubmission_conflicts(self, live_server):
        assert http_post(live_server, "/v1/jobs", tiny_job_payload(seed=8))[0] == 201
        status, body = http_post(live_server, "/v1/jobs", tiny_job_payload(seed=8))
        assert status == 409
        assert "already exists" in json.loads(body)["error"]

    def test_malformed_payloads_are_400_with_hint(self, live_server):
        status, body = http_post(live_server, "/v1/jobs", {"methd": "baseline"})
        assert status == 400
        assert "did you mean 'method'" in json.loads(body)["error"]
        status, body = http_post(live_server, "/v1/jobs", b"{not json")
        assert status == 400
        assert "not valid JSON" in json.loads(body)["error"]
        status, body = http_post(live_server, "/v1/jobs", [1, 2, 3])
        assert status == 400
        assert "JSON object" in json.loads(body)["error"]
        status, body = http_post(live_server, "/v1/jobs", {"method": "evolution"})
        assert status == 400
        assert "unknown method" in json.loads(body)["error"]

    def test_post_to_get_endpoint_is_404(self, live_server):
        status, body = http_post(live_server, "/v1/report", {})
        assert status == 404

    def test_queue_mode_with_empty_directory(self, tmp_path, capsys):
        assert main(["--runs-dir", str(tmp_path / "empty"), "sweep", "--queue"]) == 0
        assert "nothing to do" in capsys.readouterr().out

    def test_from_directory_skips_finished_and_renamed(self, runs_root, tmp_path):
        # runs_root: a-run and b-run finished, pending-run has a non-canonical
        # directory name (its config names it dance-cifar-seed4) — none plannable.
        assert len(SweepPlan.from_directory(runs_root)) == 0
        workdir = tmp_path / "queued" / "baseline-cifar-seed7"
        workdir.mkdir(parents=True)
        (workdir / CONFIG_FILE).write_text(json.dumps(tiny_job_payload()), encoding="utf-8")
        plan = SweepPlan.from_directory(tmp_path / "queued")
        assert [item.name for item in plan] == ["baseline-cifar-seed7"]


# ----------------------------------------------------------------------
# Concurrency: readers racing a writer
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_concurrent_gets_during_writer_mutation(self, live_server, runs_root):
        """Every response stays parseable strict JSON while the tree churns."""
        stop = threading.Event()
        writer_errors = []

        def writer():
            try:
                for round_number in range(40):
                    if stop.is_set():
                        return
                    name = f"churn-{round_number % 3}"
                    make_run(
                        runs_root,
                        name,
                        result=result_payload(accuracy=0.1 + round_number / 100.0),
                        config=config_payload(seed=10 + round_number % 3),
                    )
                    if round_number % 5 == 4:
                        (runs_root / name / RESULT_FILE).unlink(missing_ok=True)
            except Exception as error:  # pragma: no cover - diagnostic only
                writer_errors.append(error)

        responses = []
        errors = []

        def reader(path):
            try:
                for _ in range(12):
                    responses.append(http_get(live_server, path))
            except Exception as error:  # pragma: no cover - diagnostic only
                errors.append(error)

        writer_thread = threading.Thread(target=writer)
        reader_threads = [
            threading.Thread(target=reader, args=(path,))
            for path in ("/v1/report", "/v1/summary", "/v1/pareto", "/v1/report?refresh=1")
        ]
        writer_thread.start()
        for thread in reader_threads:
            thread.start()
        for thread in reader_threads:
            thread.join(timeout=60)
        stop.set()
        writer_thread.join(timeout=60)

        assert not errors and not writer_errors
        assert len(responses) == 48
        for status, body in responses:
            assert status == 200
            assert json.loads(body)["schema_version"] == api.SCHEMA_VERSION
