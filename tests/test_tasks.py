"""Tests for the pluggable TaskWorkload layer.

Covers the task registry (lookup, hints, third-party registration), the
bit-identity of the classification tasks against golden pre-refactor results
(RNG streams, searcher trajectories and final metrics), end-to-end smoke
runs of the detection and seq1d workloads, cross-task resume bit-identity,
the fused mixed-op forward parity, and the task-crossing sweep / Pareto
reporting CLI.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.functional import softmax
from repro.data import DataLoader, make_detection_dataset, make_sequence_dataset
from repro.data.detection import DetectionTargets
from repro.experiments import ExperimentConfig, Runner
from repro.hwmodel import tiny_search_space
from repro.hwmodel.cost_model import CostTable
from repro.nas import ArchitectureParameters, SuperNet, build_cifar_search_space
from repro.tasks import (
    DetectionHead,
    TaskWorkload,
    available_tasks,
    get_task,
    register_task,
)
from repro.tasks.detection import build_detection_search_space
from repro.tasks.seq1d import SEQ1D_CHANNELS, build_seq1d_search_space

GOLDEN = json.loads((Path(__file__).parent / "golden_task_runs.json").read_text())

#: The pre-refactor tiny-run configuration the golden results were captured with.
GOLDEN_CONFIG = dict(
    hw_space="tiny",
    num_searchable=3,
    trainable_base_channels=4,
    image_samples=64,
    evaluator_samples=60,
    evaluator_hw_epochs=2,
    evaluator_cost_epochs=3,
    search_epochs=1,
    final_epochs=1,
    rl_candidates=2,
    checkpoint_every=0,
)

TINY_TASK_RUN = dict(GOLDEN_CONFIG)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestTaskRegistry:
    def test_builtins_available(self):
        names = available_tasks()
        assert set(names) >= {"cifar", "imagenet", "detection", "seq1d"}

    def test_get_task_returns_registered_instance(self):
        assert get_task("cifar").name == "cifar"
        assert get_task("detection").default_num_classes == 5

    def test_unknown_task_gets_hint(self):
        with pytest.raises(ValueError, match="did you mean 'detection'"):
            get_task("detectoin")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_task(get_task("cifar"))

    def test_builtin_import_respects_explicit_registrations(self):
        # A third party may replace a built-in name *before* the lazy built-in
        # module import runs; that import registers several tasks per module
        # and must neither clobber the explicit registration nor raise.
        import importlib

        from repro.tasks import classification

        original = get_task("imagenet")

        class MyImagenet(TaskWorkload):
            name = "imagenet"
            default_num_classes = 99

            def build_search_space(self, config):  # pragma: no cover - unused
                raise NotImplementedError

            def build_dataset(self, config, rng=None):  # pragma: no cover - unused
                raise NotImplementedError

        try:
            register_task(MyImagenet(), replace=True)
            importlib.reload(classification)  # built-in (re)import must not conflict
            assert get_task("imagenet").default_num_classes == 99
            assert get_task("cifar").name == "cifar"
        finally:
            register_task(original, replace=True)

    def test_third_party_task_registers_and_replaces(self):
        class MyTask(TaskWorkload):
            name = "cifar"
            default_num_classes = 3

            def build_search_space(self, config):  # pragma: no cover - unused
                raise NotImplementedError

            def build_dataset(self, config, rng=None):  # pragma: no cover - unused
                raise NotImplementedError

        original = get_task("cifar")
        try:
            registered = register_task(MyTask(), replace=True)
            assert get_task("cifar") is registered
        finally:
            register_task(original, replace=True)


# ----------------------------------------------------------------------
# Config integration
# ----------------------------------------------------------------------
class TestConfigTaskIntegration:
    def test_all_builtin_tasks_validate(self):
        for task in available_tasks():
            assert ExperimentConfig(task=task).task == task

    def test_unknown_task_rejected_with_hint(self):
        with pytest.raises(ValueError, match="did you mean 'seq1d'"):
            ExperimentConfig(task="seq2d")

    def test_num_classes_defaults_come_from_registry(self):
        assert ExperimentConfig(task="detection").effective_num_classes == 5
        assert ExperimentConfig(task="seq1d").effective_num_classes == 6
        assert ExperimentConfig(task="seq1d", num_classes=9).effective_num_classes == 9

    def test_task_names_run_directories(self):
        assert ExperimentConfig(task="detection").name == "dance-detection-seed0"
        assert (
            ExperimentConfig(task="seq1d", backend="simd").name == "dance-seq1d-seed0-simd"
        )


# ----------------------------------------------------------------------
# Bit-identity of the classification tasks (the refactor's oracle)
# ----------------------------------------------------------------------
class TestClassificationBitIdentity:
    """cifar/imagenet runs through the task registry reproduce golden
    pre-refactor results bit-for-bit: same RNG streams, same searcher
    trajectories (history floats), same derived design and oracle metrics."""

    @pytest.mark.parametrize(
        "key, overrides",
        [
            ("dance-cifar", dict(method="dance", task="cifar")),
            ("baseline-cifar", dict(method="baseline", task="cifar")),
            ("rl-cifar", dict(method="rl", task="cifar")),
            ("baseline-imagenet", dict(method="baseline", task="imagenet")),
        ],
    )
    def test_matches_golden(self, tmp_path, key, overrides):
        config = ExperimentConfig(**{**GOLDEN_CONFIG, **overrides})
        result = Runner(base_dir=tmp_path).run(config)
        produced = result.to_dict()
        produced.pop("search_seconds")
        assert produced == GOLDEN[key]


# ----------------------------------------------------------------------
# Detection / seq1d spaces and datasets
# ----------------------------------------------------------------------
class TestDetectionWorkload:
    def test_space_declares_branches_and_head(self):
        space = build_detection_search_space(num_searchable=3)
        assert isinstance(space.task_head, DetectionHead)
        assert [cfg.name for cfg in space.branch_layers] == ["cls_branch", "box_branch"]
        fixed = space.fixed_workload_layers()
        assert [layer.name.split(".")[-1] for layer in fixed] == [
            "stem",
            "head",
            "cls_branch",
            "box_branch",
        ]
        # Branch convolutions enter the architecture workload.
        workload = space.build_workload([0, 0, 0])
        assert workload.layers[-1].name.endswith("box_branch")

    def test_cost_table_includes_branches(self):
        plain = build_cifar_search_space(num_searchable=3, num_classes=5)
        detection = build_detection_search_space(num_searchable=3)
        hw_space = tiny_search_space()
        plain_table = CostTable(plain, hw_space)
        detection_table = CostTable(detection, hw_space)
        assert np.all(detection_table.fixed_latency > plain_table.fixed_latency)

    def test_dataset_targets_and_split(self):
        dataset = make_detection_dataset(num_samples=40, num_classes=5, resolution=8, rng=0)
        assert dataset.boxes.shape == (40, 4)
        assert np.all(dataset.boxes > 0.0) and np.all(dataset.boxes <= 1.0)
        train, val = dataset.split(0.75, rng=1)
        assert len(train) == 30 and val.boxes.shape == (10, 4)
        images, targets = next(iter(DataLoader(dataset, batch_size=8, shuffle=False)))
        assert isinstance(targets, DetectionTargets)
        assert targets.boxes.shape == (8, 4)
        assert np.array_equal(targets.labels, dataset.labels[:8])

    def test_head_loss_and_accuracy(self):
        head = DetectionHead(num_classes=5)
        outputs = Tensor(np.random.default_rng(0).normal(size=(6, 9)), requires_grad=True)
        targets = DetectionTargets(
            labels=np.arange(6) % 5,
            boxes=np.full((6, 4), 0.5),
        )
        loss = head.loss(outputs, targets, label_smoothing=0.1)
        loss.backward()
        assert outputs.grad is not None and np.any(outputs.grad != 0.0)
        assert head.predictions(outputs).shape == (6,)
        assert 0 <= head.correct_count(outputs, targets) <= 6
        boxes = head.predicted_boxes(outputs)
        assert np.all((boxes > 0.0) & (boxes < 1.0))


class TestSeq1DWorkload:
    def test_space_is_one_dimensional(self):
        space = build_seq1d_search_space(num_searchable=3)
        assert space.geometry == "1d"
        stem, head = space.fixed_workload_layers()
        assert stem.h == 1 and stem.r == 1 and stem.s == 3 and stem.w == 64
        assert head.h == 1
        layers = space.op_layers(0, 4)  # conv1d7_e3
        assert [layer.h for layer in layers] == [1, 1, 1]
        depthwise = layers[1]
        assert depthwise.r == 1 and depthwise.s == 7 and depthwise.groups == depthwise.c

    def test_non_square_layers_cost_finite(self):
        space = build_seq1d_search_space(num_searchable=3)
        table = CostTable(space, tiny_search_space())
        latency, energy, area = table.metrics_per_config(np.array([0, 3, 5]))
        assert np.all(np.isfinite(latency)) and np.all(latency > 0)
        assert np.all(np.isfinite(energy)) and np.all(area > 0)

    def test_dataset_shape_and_signal(self):
        dataset = make_sequence_dataset(num_samples=60, num_classes=6, length=8, rng=0)
        assert dataset.images.shape == (60, SEQ1D_CHANNELS, 1, 8)
        assert set(np.unique(dataset.labels)) == set(range(6))

    def test_supernet_runs_on_sequences(self):
        space = build_seq1d_search_space(num_searchable=3, trainable_base_channels=4)
        net = SuperNet(space, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, SEQ1D_CHANNELS, 1, 8)))
        logits = net.forward_discrete(x, [0, 3, 6])
        assert logits.shape == (2, space.num_classes)
        assert np.all(np.isfinite(logits.data))


# ----------------------------------------------------------------------
# End-to-end runs, resume bit-identity
# ----------------------------------------------------------------------
def _strip_clock(result) -> dict:
    data = result.to_dict()
    data.pop("search_seconds")
    return data


class TestNewTaskRuns:
    @pytest.mark.parametrize("task", ["detection", "seq1d"])
    def test_end_to_end_run(self, tmp_path, task):
        config = ExperimentConfig(task=task, method="dance", **TINY_TASK_RUN)
        result = Runner(base_dir=tmp_path).run(config)
        assert math.isfinite(result.metrics.edap) and result.metrics.edap > 0
        assert math.isfinite(result.accuracy)
        assert (tmp_path / config.name / "result.json").exists()

    @pytest.mark.parametrize("task, method", [("detection", "baseline"), ("seq1d", "rl")])
    def test_resume_bit_identical(self, tmp_path, task, method):
        config = ExperimentConfig(
            task=task,
            method=method,
            **{**TINY_TASK_RUN, "checkpoint_every": 1, "search_epochs": 2},
        )
        runner = Runner(base_dir=tmp_path)
        uninterrupted = runner.run(config, workdir=tmp_path / "full")
        paused = runner.run(config, workdir=tmp_path / "paused", max_steps=1)
        assert paused is None
        resumed = runner.run(config, workdir=tmp_path / "paused", resume=True)
        assert _strip_clock(uninterrupted) == _strip_clock(resumed)


# ----------------------------------------------------------------------
# Fused mixed-op forward (soft gates)
# ----------------------------------------------------------------------
class TestFusedMixedOp:
    @pytest.mark.parametrize("flavour", ["cifar", "seq1d"])
    def test_fused_path_matches_loop(self, flavour):
        if flavour == "cifar":
            space = build_cifar_search_space(num_searchable=3, trainable_base_channels=4)
            shape = (4, 3, 8, 8)
        else:
            space = build_seq1d_search_space(num_searchable=3, trainable_base_channels=4)
            shape = (4, SEQ1D_CHANNELS, 1, 8)
        net = SuperNet(space, rng=0)
        params = ArchitectureParameters(space, rng=1)
        x = np.random.default_rng(2).normal(size=shape)

        def run(fused: bool):
            for mixed in net.mixed_ops:
                mixed.fuse_soft_gates = fused
            net.zero_grad()
            params.zero_grad()
            out = net(Tensor(x), softmax(params.alpha, axis=-1))
            (out * out).mean().backward()
            grads = {
                name: None if p.grad is None else p.grad.copy()
                for name, p in net.named_parameters()
            }
            return out.data.copy(), params.alpha.grad.copy(), grads

        loop_out, loop_alpha, loop_grads = run(False)
        fused_out, fused_alpha, fused_grads = run(True)
        assert np.allclose(loop_out, fused_out, atol=1e-10)
        assert np.allclose(loop_alpha, fused_alpha, atol=1e-10)
        for name, grad in loop_grads.items():
            if grad is None:
                assert fused_grads[name] is None
            else:
                assert np.allclose(grad, fused_grads[name], atol=1e-8), name

    def test_soft_gates_take_fused_path_by_default(self):
        # Guards the default wiring: losing `fuse_soft_gates = True` would be
        # invisible to the parity tests (which set the flag explicitly) and
        # to the perf gate (the fused win is BLAS-parallelism-bound).
        space = build_cifar_search_space(num_searchable=3, trainable_base_channels=4)
        net = SuperNet(space, rng=0)
        params = ArchitectureParameters(space, rng=1)
        calls = []
        for mixed in net.mixed_ops:
            assert mixed.fuse_soft_gates
            original = mixed._forward_fused
            mixed._forward_fused = (
                lambda *args, _original=original, **kwargs: calls.append(1)
                or _original(*args, **kwargs)
            )
        net(Tensor(np.zeros((1, 3, 8, 8))), softmax(params.alpha, axis=-1))
        assert len(calls) == len(net.mixed_ops)

    def test_hard_gates_never_take_fused_path(self):
        space = build_cifar_search_space(num_searchable=3, trainable_base_channels=4)
        net = SuperNet(space, rng=0)
        mixed = net.mixed_ops[0]
        calls = []
        original = mixed._forward_fused
        mixed._forward_fused = lambda *args, **kwargs: calls.append(1) or original(
            *args, **kwargs
        )
        gates = np.zeros((3, space.num_ops))
        gates[np.arange(3), [0, 1, 2]] = 1.0
        net(Tensor(np.zeros((1, 3, 8, 8))), Tensor(gates))
        assert calls == []

    def test_batchnorm_running_stats_match(self):
        space = build_cifar_search_space(num_searchable=3, trainable_base_channels=4)
        x = np.random.default_rng(3).normal(size=(4, 3, 8, 8))
        stats = {}
        for fused in (False, True):
            net = SuperNet(space, rng=0)
            params = ArchitectureParameters(space, rng=1)
            for mixed in net.mixed_ops:
                mixed.fuse_soft_gates = fused
            net(Tensor(x), softmax(params.alpha, axis=-1))
            stats[fused] = {name: buf.copy() for name, buf in net.named_buffers()}
        for name, buffer in stats[False].items():
            assert np.allclose(buffer, stats[True][name], atol=1e-10), name


class TestFlopsModelGeneric:
    def test_normalized_penalty_invariant_to_cost_batch(self):
        # Fixed layers and candidates are both scaled by batch_size_for_cost,
        # so the FLOPs-penalty baseline's normalised objective is unchanged.
        from repro.nas import FlopsModel

        space_a = build_cifar_search_space(num_searchable=3)
        space_b = build_cifar_search_space(num_searchable=3)
        space_b.batch_size_for_cost = 16
        probabilities = Tensor(
            np.full((3, space_a.num_ops), 1.0 / space_a.num_ops)
        )
        penalty_a = FlopsModel(space_a).normalized_expected_flops(probabilities).item()
        penalty_b = FlopsModel(space_b).normalized_expected_flops(probabilities).item()
        assert penalty_a == pytest.approx(penalty_b, rel=1e-12)

    def test_seq1d_table_matches_workload_layers(self):
        from repro.nas import FlopsModel

        space = build_seq1d_search_space(num_searchable=3)
        model = FlopsModel(space)
        expected = sum(layer.flops for layer in space.op_layers(1, 2))
        assert model.table[1, 2] == expected


# ----------------------------------------------------------------------
# CLI: run --set task=..., sweep --tasks crossing, report --pareto
# ----------------------------------------------------------------------
class TestTaskCLI:
    CLI_SETTINGS = [
        "--set", "num_searchable=3",
        "--set", "trainable_base_channels=4",
        "--set", "image_samples=64",
        "--set", "search_epochs=1",
        "--set", "final_epochs=1",
        "--set", "hw_space=tiny",
        "--set", "evaluator_samples=40",
        "--set", "evaluator_hw_epochs=1",
        "--set", "evaluator_cost_epochs=1",
    ]

    def test_run_task_override_and_sweep_tasks_crossing(self, tmp_path, capsys):
        from repro.__main__ import main

        runs = str(tmp_path / "runs")
        assert (
            main(
                ["--runs-dir", runs, "run", "--method", "baseline",
                 "--set", "task=seq1d", *self.CLI_SETTINGS]
            )
            == 0
        )
        assert (tmp_path / "runs" / "baseline-seq1d-seed0" / "result.json").exists()

        assert (
            main(
                ["--runs-dir", runs, "sweep", "--methods", "baseline",
                 "--seeds", "0", "--tasks", "cifar,detection", *self.CLI_SETTINGS]
            )
            == 0
        )
        assert (tmp_path / "runs" / "baseline-cifar-seed0" / "result.json").exists()
        assert (tmp_path / "runs" / "baseline-detection-seed0" / "result.json").exists()

        capsys.readouterr()
        assert main(["--runs-dir", runs, "report", "--pareto"]) == 0
        text = capsys.readouterr().out
        assert "Pareto front" in text and "baseline-seq1d-seed0" in text

        assert main(["--runs-dir", runs, "report", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["results"]) == 3
        pareto = data["pareto"]
        assert {record["run"] for record in pareto} == {
            "baseline-seq1d-seed0",
            "baseline-cifar-seed0",
            "baseline-detection-seed0",
        }
        assert any(record["on_front"] for record in pareto)
        edaps = [record["edap"] for record in pareto]
        assert edaps == sorted(edaps)

    def test_unknown_sweep_task_fails_loudly(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="did you mean"):
            main(
                ["--runs-dir", str(tmp_path), "sweep", "--methods", "baseline",
                 "--tasks", "detectoin"]
            )


# ----------------------------------------------------------------------
# Pareto analytics on synthetic results
# ----------------------------------------------------------------------
class TestParetoData:
    def _write_result(self, directory, accuracy, edap_parts):
        from repro.core.results import SearchResult
        from repro.hwmodel import AcceleratorConfig
        from repro.hwmodel.metrics import HardwareMetrics

        latency, energy, area = edap_parts
        result = SearchResult(
            method="DANCE (w/ FF)",
            op_indices=np.array([0, 1, 2]),
            accuracy=accuracy,
            hardware=AcceleratorConfig(pe_x=8, pe_y=8, rf_size=16, dataflow="WS"),
            metrics=HardwareMetrics(latency, energy, area),
            search_seconds=1.0,
        )
        directory.mkdir(parents=True)
        (directory / "result.json").write_text(json.dumps(result.to_dict()))

    def test_nested_sweep_roots_with_same_run_name_stay_distinct(self, tmp_path):
        # Two sweep roots each holding a "dance-cifar-seed0"; the dominated
        # copy must not inherit the other's front flag (root-relative names
        # + index-keyed dominance).
        self._write_result(
            tmp_path / "a" / "dance-cifar-seed0", accuracy=0.5, edap_parts=(1.0, 1.0, 1.0)
        )
        self._write_result(
            tmp_path / "b" / "dance-cifar-seed0", accuracy=0.5, edap_parts=(9.0, 9.0, 9.0)
        )
        records = Runner(base_dir=tmp_path).pareto_data()
        flags = {record["run"]: record["on_front"] for record in records}
        assert flags == {"a/dance-cifar-seed0": True, "b/dance-cifar-seed0": False}

    def test_front_flags_non_dominated_runs(self, tmp_path):
        # a: low error, high edap; b: high error, low edap; c: dominated by b.
        self._write_result(tmp_path / "a", accuracy=0.9, edap_parts=(2.0, 2.0, 2.0))
        self._write_result(tmp_path / "b", accuracy=0.5, edap_parts=(1.0, 1.0, 1.0))
        self._write_result(tmp_path / "c", accuracy=0.4, edap_parts=(1.5, 1.0, 1.0))
        self._write_result(tmp_path / "nan", accuracy=float("nan"), edap_parts=(1, 1, 1))
        records = Runner(base_dir=tmp_path).pareto_data()
        by_run = {record["run"]: record for record in records}
        assert set(by_run) == {"a", "b", "c"}  # NaN accuracy excluded
        assert by_run["a"]["on_front"] and by_run["b"]["on_front"]
        assert not by_run["c"]["on_front"]
        rendered = Runner(base_dir=tmp_path).format_pareto(records)
        assert "Pareto front" in rendered and "*" in rendered
