"""Tests for the shared utility helpers (seeding, logging, serialisation)."""

from __future__ import annotations

import dataclasses
import logging

import numpy as np

from repro.utils import get_logger, global_rng, load_json, save_json, seed_everything
from repro.utils.seeding import as_rng


class TestSeeding:
    def test_seed_everything_is_deterministic(self):
        seed_everything(42)
        first = global_rng().normal(size=5)
        seed_everything(42)
        second = global_rng().normal(size=5)
        assert np.allclose(first, second)

    def test_as_rng_accepts_none_int_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)
        assert isinstance(as_rng(3), np.random.Generator)
        generator = np.random.default_rng(0)
        assert as_rng(generator) is generator

    def test_as_rng_int_is_deterministic(self):
        assert np.allclose(as_rng(5).normal(size=3), as_rng(5).normal(size=3))


class TestLogging:
    def test_logger_namespacing(self):
        logger = get_logger("core.test")
        assert logger.name == "repro.core.test"
        already_prefixed = get_logger("repro.foo")
        assert already_prefixed.name == "repro.foo"

    def test_logger_is_singleton_per_name(self):
        assert get_logger("same") is get_logger("same")

    def test_root_has_single_handler(self):
        get_logger("a")
        get_logger("b")
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1


class TestSerialization:
    def test_roundtrip_plain_types(self, tmp_path):
        payload = {"a": 1, "b": [1.5, 2.5], "c": "text"}
        path = save_json(payload, tmp_path / "plain.json")
        assert load_json(path) == payload

    def test_numpy_values_serialised(self, tmp_path):
        payload = {
            "scalar": np.float64(2.5),
            "integer": np.int64(7),
            "flag": np.bool_(True),
            "array": np.arange(3),
        }
        loaded = load_json(save_json(payload, tmp_path / "numpy.json"))
        assert loaded == {"scalar": 2.5, "integer": 7, "flag": True, "array": [0, 1, 2]}

    def test_dataclass_serialised(self, tmp_path):
        @dataclasses.dataclass
        class Record:
            name: str
            value: float

        loaded = load_json(save_json({"record": Record("x", 1.0)}, tmp_path / "dc.json"))
        assert loaded == {"record": {"name": "x", "value": 1.0}}

    def test_nested_directory_created(self, tmp_path):
        path = save_json({"k": 1}, tmp_path / "nested" / "deep" / "file.json")
        assert path.exists()
