#!/usr/bin/env python3
"""Benchmark-regression gate: compare a fresh ``run_bench.py`` measurement
against the committed ``BENCH_costmodel.json`` baseline.

Wall-clock seconds are machine-dependent (a CI runner is not the laptop that
produced the baseline), but each benchmark's *speedup* — the before/after
ratio measured on the same machine in the same process — is comparable across
machines.  The gate therefore requires, for every benchmark key present in
both files::

    fresh.speedup >= max(min_speedup, min_ratio * baseline.speedup)

``min_ratio`` absorbs runner noise (the vectorised "after" timings are tens
of milliseconds); ``min_speedup`` is the hard floor that catches the real
failure mode — losing the vectorised path entirely, which collapses the
speedup to ~1.  Benchmarks named in :data:`TRACKED_KEYS` (``supernet_step``,
a modest fused-vs-loop win that is BLAS-parallelism-bound rather than a
vectorised-vs-scalar chasm) are *tracked*: they are compared and printed,
but gated only on ``max(KEY_FLOORS, min_ratio * baseline)`` — a hard 2x
floor on a ~1x optimisation would turn runner noise into CI flakes, so a
tracked key has an absolute floor only if :data:`KEY_FLOORS` names one.
Every other key keeps the hard floor, whatever its committed baseline says,
so a silently regressed baseline cannot un-gate a vectorised path.  Exit
code 0 when every key passes, 1 otherwise.

Usage::

    python tools/check_bench.py BENCH_fresh.json [--baseline BENCH_costmodel.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Benchmarks exempt from the absolute ``min_speedup`` floor (see module
#: docstring); everything else is gated at ``max(floor, ratio * baseline)``.
#: ``supernet_step`` (fused vs loop) and ``supernet_step_float32`` (float32
#: vs float64 step) are modest BLAS-bound wins; ``conv_fwd`` measures the
#: gather-vs-stride-trick im2col, a reordering with no arithmetic to
#: vectorise away.  ``col2im`` and ``conv_bwd`` keep the hard 2x floor —
#: losing the scatter-add fold is the regression they exist to catch.
#: ``serve_report`` (warm vs refresh=1 HTTP report) and ``serve_cost_query``
#: (resident vs rebuilt cost table over HTTP) include per-request socket
#: round-trips on both sides, so a hard multiple would gate on loopback
#: noise; they are in the committed baseline and gate on relative
#: regressions only.  ``scheduler_decide`` (cold ASHA coordinator sync vs
#: warm re-sync on a settled schedule) is cold-vs-warm like the serve keys
#: — dominated by the browser scan it shares with ``report_scan`` — and is
#: ratio-gated against its committed baseline.  ``mixedop_step`` (fused
#: soft-gate step, legacy vs plan-cached lowering) is a modest whole-step
#: win like ``supernet_step``; ``conv_bwd_weight`` (legacy einsum vs the
#: plan-tier float32 weight-gradient contraction) is tracked for the ratio
#: but also carries an absolute :data:`KEY_FLOORS` entry — losing the
#: matmul fast form is the regression it exists to catch.
TRACKED_KEYS = frozenset(
    {
        "supernet_step",
        "supernet_step_float32",
        "conv_fwd",
        "conv_bwd_weight",
        "mixedop_step",
        "serve_report",
        "serve_cost_query",
        "scheduler_decide",
    }
)

#: Per-benchmark absolute floors that *override* the default ``min_speedup``
#: for keys whose acceptance criterion is stronger than the generic 2x (or,
#: for tracked keys, that add an absolute floor on top of the ratio gate).
#: ``report_scan`` is the results browser's warm-vs-cold scan: a warm report
#: over a sweep-sized tree must stay at least 10x faster than a full
#: re-parse, or the incremental cache has effectively stopped working.
#: ``conv_bwd_weight`` must hold the 1.5x acceptance criterion of the
#: plan-tier weight gradient whatever the baseline drifts to.
KEY_FLOORS = {"report_scan": 10.0, "conv_bwd_weight": 1.5}


def compare(fresh: dict, baseline: dict, min_ratio: float, min_speedup: float) -> list:
    """Per-benchmark ``(key, fresh_speedup, required, passed)`` records.

    Every baseline key must be present in the fresh run — a benchmark that
    silently disappears from ``run_bench.py`` is itself a regression, so a
    missing key is reported as a failing row (speedup 0).
    """
    rows = []
    fresh_results = fresh.get("results", {})
    for key in sorted(baseline.get("results", {})):
        baseline_speedup = float(baseline["results"][key]["speedup"])
        if key in TRACKED_KEYS:
            # Tracked benchmark: the relative-regression gate applies, plus
            # an absolute floor only if KEY_FLOORS names one explicitly.
            required = max(KEY_FLOORS.get(key, 0.0), min_ratio * baseline_speedup)
        else:
            required = max(KEY_FLOORS.get(key, min_speedup), min_ratio * baseline_speedup)
        if key not in fresh_results:
            rows.append((key, 0.0, required, False))
            continue
        fresh_speedup = float(fresh_results[key]["speedup"])
        rows.append((key, fresh_speedup, required, fresh_speedup >= required))
    return rows


def new_keys(fresh: dict, baseline: dict) -> list:
    """Fresh benchmark keys absent from the committed baseline.

    These are *listed but not gated*: a PR that adds a benchmark (e.g. a new
    hardware backend's kernels) must not fail the regression gate merely
    because the baseline predates the key.  Committing an updated baseline
    later brings them under the gate.
    """
    baseline_results = baseline.get("results", {})
    return sorted(key for key in fresh.get("results", {}) if key not in baseline_results)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="JSON written by a fresh benchmarks/run_bench.py run")
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / "BENCH_costmodel.json"),
        help="committed baseline to compare against",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.10,
        help="fresh speedup must reach this fraction of the baseline speedup (default: 0.10)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="absolute speedup floor for every benchmark (default: 2.0)",
    )
    args = parser.parse_args()

    fresh = json.loads(Path(args.fresh).read_text(encoding="utf-8"))
    baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
    if fresh.get("space") != baseline.get("space"):
        print(
            f"warning: comparing a {fresh.get('space')!r}-space run against a "
            f"{baseline.get('space')!r}-space baseline; only the absolute floor applies"
        )
        args.min_ratio = 0.0

    rows = compare(fresh, baseline, args.min_ratio, args.min_speedup)
    if not rows:
        print("baseline contains no benchmark results")
        return 1

    failed = [row for row in rows if not row[3]]
    extra = new_keys(fresh, baseline)
    width = max(len(key) for key in [k for k, *_ in rows] + extra)
    for key, fresh_speedup, required, passed in rows:
        verdict = "ok  " if passed else "FAIL"
        detail = (
            "MISSING from fresh run"
            if fresh_speedup == 0.0 and key not in fresh.get("results", {})
            else f"speedup {fresh_speedup:8.1f}x  (required >= {required:.1f}x)"
        )
        print(f"{verdict}  {key:<{width}}  {detail}")
    for key in extra:
        speedup = float(fresh["results"][key].get("speedup", float("nan")))
        print(f"new   {key:<{width}}  speedup {speedup:8.1f}x  (not in baseline; not gated)")
    if failed:
        print(f"\nBenchmark regression gate FAILED for {len(failed)}/{len(rows)} benchmark(s).")
        return 1
    tail = f" + {len(extra)} new ungated" if extra else ""
    print(f"\nBenchmark regression gate passed ({len(rows)} benchmark(s){tail}).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
