#!/usr/bin/env python3
"""Documentation checker: link resolution + Python snippet syntax.

Checks, for ``README.md`` and every Markdown file under ``docs/``:

* every relative Markdown link ``[text](target)`` resolves to an existing
  file or directory in the repository (external ``http(s)``/``mailto``
  links and pure ``#anchor`` links are skipped);
* every fenced ``python`` code block compiles (``compile(..., "exec")``) —
  documentation code must at least be syntactically valid.

Used by CI (``.github/workflows/ci.yml``) and by ``tests/test_docs.py``.
Exit code 0 when clean, 1 with a per-finding report otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent

# [text](target) — excluding images' leading "!" is unnecessary: image links
# must resolve too.  Nested parentheses do not occur in these docs.
_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_PATTERN = re.compile(r"^```(\w*)\s*$")


def doc_files(root: Path = REPO_ROOT) -> List[Path]:
    """README.md plus every Markdown file under docs/."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def _display(path: Path) -> str:
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def check_links(path: Path) -> List[str]:
    """Unresolvable relative link targets in ``path`` (one message each)."""
    problems = []
    for target in _LINK_PATTERN.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            problems.append(f"{_display(path)}: broken link -> {target}")
    return problems


def python_snippets(path: Path) -> List[str]:
    """The contents of every fenced ``python`` block in ``path``."""
    snippets: List[str] = []
    block: List[str] = []
    language = None
    for line in path.read_text(encoding="utf-8").splitlines():
        fence = _FENCE_PATTERN.match(line)
        if fence:
            if language is None:
                language = fence.group(1).lower()
                block = []
            else:
                if language == "python":
                    snippets.append("\n".join(block))
                language = None
        elif language is not None:
            block.append(line)
    return snippets


def check_snippets(path: Path) -> List[str]:
    """Syntax errors in the fenced Python blocks of ``path``."""
    problems = []
    for index, snippet in enumerate(python_snippets(path)):
        try:
            compile(snippet, f"{path.name}#snippet{index}", "exec")
        except SyntaxError as error:
            problems.append(
                f"{_display(path)}: python snippet {index} does not parse: {error}"
            )
    return problems


def run_checks(root: Path = REPO_ROOT) -> List[str]:
    """All documentation problems found under ``root``."""
    problems: List[str] = []
    for path in doc_files(root):
        problems.extend(check_links(path))
        problems.extend(check_snippets(path))
    return problems


def main() -> int:
    files = doc_files()
    problems = run_checks()
    if problems:
        print(f"Documentation check FAILED ({len(problems)} problem(s)):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    total_snippets = sum(len(python_snippets(path)) for path in files)
    print(
        f"Documentation check passed: {len(files)} files, "
        f"{total_snippets} python snippets, all links resolve."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
