#!/usr/bin/env python3
"""cProfile harness for the supernet training step.

Runs a few soft-gate supernet train steps (forward + backward + a supernet
and architecture optimiser step — the inner loop every search method pays
for) under cProfile and prints the hottest functions.  The quickest way to
check where an autograd change moved the bottleneck::

    PYTHONPATH=src python tools/profile_supernet.py --steps 5 --sort cumulative

``--float32`` profiles the opt-in precision policy, ``--no-plans`` the
legacy im2col/col2im lowering (both documented in docs/performance.md), and
``--no-fused`` the per-candidate mixed-op loop instead of the batched
einsum, so the relative cost of each tier can be read off directly.
``--backward-only`` builds each step's forward graph outside the profiler
and profiles just ``backward()`` + the optimiser steps — the view that
isolates the weight-gradient contraction and the col2im folds.
"""

from __future__ import annotations

import argparse
import contextlib
import cProfile
import pstats
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.autograd import Adam, SGD, set_plans_enabled, use_dtype  # noqa: E402
from repro.autograd.functional import softmax  # noqa: E402
from repro.autograd.tensor import Tensor  # noqa: E402
from repro.nas import ArchitectureParameters, SuperNet, build_cifar_search_space  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=5, help="train steps to profile")
    parser.add_argument("--batch", type=int, default=16, help="images per step")
    parser.add_argument(
        "--channels", type=int, default=8, help="trainable_base_channels of the search space"
    )
    parser.add_argument(
        "--float32", action="store_true", help="profile under the float32 precision policy"
    )
    parser.add_argument(
        "--no-plans",
        action="store_true",
        help="disable cached convolution plans (legacy lowering)",
    )
    parser.add_argument(
        "--no-fused",
        action="store_true",
        help="per-candidate mixed-op loop instead of the fused batched einsum",
    )
    parser.add_argument(
        "--backward-only",
        action="store_true",
        help="profile only backward() + optimiser steps (forward graph built outside)",
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime", "ncalls"],
        help="pstats sort order",
    )
    parser.add_argument("--limit", type=int, default=25, help="rows of profile output")
    parser.add_argument(
        "--output", type=Path, default=None, help="also dump raw pstats to this file"
    )
    args = parser.parse_args()

    dtype_scope = use_dtype("float32") if args.float32 else contextlib.nullcontext()
    previous_plans = set_plans_enabled(not args.no_plans)
    try:
        with dtype_scope:
            space = build_cifar_search_space(trainable_base_channels=args.channels)
            supernet = SuperNet(space, rng=0)
            arch_params = ArchitectureParameters(space, rng=1)
            for mixed in supernet.mixed_ops:
                mixed.fuse_soft_gates = not args.no_fused
            weight_opt = SGD(supernet.parameters(), lr=0.01, momentum=0.9)
            arch_opt = Adam([arch_params.alpha], lr=0.001)
            images = np.random.default_rng(0).normal(size=(args.batch, 3, 8, 8))

            def forward():
                supernet.zero_grad()
                arch_params.zero_grad()
                logits = supernet(Tensor(images), softmax(arch_params.alpha, axis=-1))
                return (logits * logits).mean()

            def optimise() -> None:
                weight_opt.step()
                arch_opt.step()

            def step() -> None:
                forward().backward()
                optimise()

            step()  # warm caches (conv plans, BLAS) outside the profile

            profiler = cProfile.Profile()
            if args.backward_only:
                # Build each forward graph un-profiled; profile only the
                # backward walk and the optimiser updates.
                for _ in range(args.steps):
                    loss = forward()
                    profiler.enable()
                    loss.backward()
                    optimise()
                    profiler.disable()
            else:
                profiler.enable()
                for _ in range(args.steps):
                    step()
                profiler.disable()
    finally:
        set_plans_enabled(previous_plans)

    stats = pstats.Stats(profiler)
    print(
        f"profiled {args.steps} supernet step(s): batch={args.batch}, "
        f"channels={args.channels}, dtype={'float32' if args.float32 else 'float64'}, "
        f"plans={'off' if args.no_plans else 'on'}, "
        f"fused={'off' if args.no_fused else 'on'}"
        + (", backward-only" if args.backward_only else "")
    )
    stats.sort_stats(args.sort).print_stats(args.limit)
    if args.output is not None:
        stats.dump_stats(str(args.output))
        print(f"raw pstats written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
